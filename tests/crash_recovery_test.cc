// Crash-recovery property test: run a random concurrent workload on the RW
// node, sample the group-commit durable watermark mid-run (the "crash
// point"), then simulate a SIGKILL-style loss of everything volatile — only
// the base pages/files and the redo records at or below the watermark
// survive into a fresh shared store. A recovery node boots from that state,
// replays the log, and must equal exactly the durable-watermark prefix of
// the commit history (commit-VID order == commit-LSN order, so the LSN cut
// is a VID prefix).
//
// Both engines are asserted against the durable-prefix model: the
// commit-gated column index directly (Phase#2 only surfaces transactions
// whose commit record made it into the durable prefix), and the row
// *replica* after the ARIES-style undo pass (RecoverRowReplica) — Phase#1
// physical replay is commit-agnostic, so the raw pages contain effects of
// transactions still in flight at the cut until the undo pass rolls them
// back to the newest committed images their version chains recorded.
//
// Seeded via the standard IMCI_TEST_SEED / IMCI_TEST_ITERS hooks.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/rng.h"
#include "log/log_store.h"
#include "tests/test_util.h"

namespace imci {
namespace {

std::shared_ptr<const Schema> KvSchema() {
  std::vector<ColumnDef> cols;
  cols.push_back({"id", DataType::kInt64, false, true});
  cols.push_back({"v", DataType::kInt64, false, true});
  cols.push_back({"payload", DataType::kString, true, true});
  return std::make_shared<Schema>(1, "kv", cols, 0);
}

/// The logical effect of one committed transaction, keyed by commit VID.
struct TxnEffect {
  struct Op {
    enum class Kind : uint8_t { kPut, kErase } kind;
    int64_t pk = 0;
    int64_t v = 0;
    std::string payload;
  };
  Vid vid = 0;
  Lsn commit_lsn = 0;
  std::vector<Op> ops;
};

class CrashRecoveryTest : public ::testing::TestWithParam<int> {};

TEST_P(CrashRecoveryTest, RecoveredStateEqualsDurableWatermarkPrefix) {
  const uint64_t seed = testing_util::TestSeed(1000 + GetParam());
  const int txns_per_thread = testing_util::TestIters(250);
  SCOPED_TRACE(::testing::Message() << "IMCI_TEST_SEED=" << seed
                                    << " IMCI_TEST_ITERS=" << txns_per_thread
                                    << " reproduces this run");

  PolarFs fs;
  Catalog catalog;
  RwNode rw(&fs, &catalog);
  ASSERT_TRUE(rw.CreateTable(KvSchema()).ok());
  std::vector<Row> base;
  for (int64_t pk = 0; pk < 200; pk += 2) {
    base.push_back({pk, int64_t(0), std::string("base")});
  }
  ASSERT_TRUE(rw.BulkLoad(1, base).ok());
  ASSERT_TRUE(rw.FinishLoad().ok());

  // Random mixed workload: 4 writer threads, 1-3 ops per transaction, 10%
  // voluntary rollbacks, lock-timeout aborts tolerated.
  auto* txns = rw.txn_manager();
  std::mutex commits_mu;
  std::vector<TxnEffect> commits;
  constexpr int kThreads = 4;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(seed + t);
      for (int i = 0; i < txns_per_thread; ++i) {
        Transaction txn;
        txns->Begin(&txn);
        TxnEffect eff;
        bool aborted = false;
        const int ops = 1 + static_cast<int>(rng.Next() % 3);
        for (int o = 0; o < ops; ++o) {
          const int64_t pk = static_cast<int64_t>(rng.Next() % 240);
          const int64_t v = static_cast<int64_t>(rng.Next() % 100000);
          std::string payload = rng.RandomString(0, 40);
          const uint64_t action = rng.Next() % 3;
          Status s;
          if (action == 0) {
            s = txns->Insert(&txn, 1, {pk, v, payload});
            if (s.ok()) {
              eff.ops.push_back({TxnEffect::Op::Kind::kPut, pk, v, payload});
            }
          } else if (action == 1) {
            s = txns->Update(&txn, 1, pk, {pk, v, payload});
            if (s.ok()) {
              eff.ops.push_back({TxnEffect::Op::Kind::kPut, pk, v, payload});
            }
          } else {
            s = txns->Delete(&txn, 1, pk);
            if (s.ok()) {
              eff.ops.push_back({TxnEffect::Op::Kind::kErase, pk, 0, {}});
            }
          }
          if (s.IsBusy()) {  // lock-wait timeout: abort and retry later
            aborted = true;
            break;
          }
          // Duplicate inserts / missing keys are harmless no-op statuses.
        }
        if (aborted || rng.Next() % 10 == 0) {
          (void)txns->Rollback(&txn);
          continue;
        }
        if (!txns->Commit(&txn).ok()) continue;
        eff.vid = txn.commit_vid();
        eff.commit_lsn = txn.commit_lsn();
        std::lock_guard<std::mutex> g(commits_mu);
        commits.push_back(std::move(eff));
      }
    });
  }

  // Sample the crash point mid-run — the durable watermark right after some
  // group-commit batch, while transactions are still in flight: wait for a
  // fraction of the workload to commit, then cut.
  const uint64_t sample_at =
      std::max<uint64_t>(1, static_cast<uint64_t>(txns_per_thread) / 2);
  while (txns->commits() < sample_at) std::this_thread::yield();
  // Deterministic straddler: a transaction whose DML records are durable
  // *below* the cut but whose commit record lands beyond it. Phase#1 replay
  // on the recovery node applies its page effects commit-agnostically; only
  // the ARIES undo pass can roll them back. (The random workload can also
  // produce straddlers, but not reliably on every seed.) pk 300 is outside
  // the workload's key range, so no lock interference.
  Transaction straddler;
  txns->Begin(&straddler);
  ASSERT_TRUE(
      txns->Insert(&straddler, 1, {int64_t(300), int64_t(1), std::string("straddle")})
          .ok());
  // A filler commit forces a group-commit fsync that covers the straddler's
  // insert record, pulling it under the durable watermark we cut at.
  Transaction filler;
  txns->Begin(&filler);
  ASSERT_TRUE(
      txns->Insert(&filler, 1, {int64_t(301), int64_t(2), std::string("filler")}).ok());
  ASSERT_TRUE(txns->Commit(&filler).ok());
  {
    TxnEffect eff;
    eff.vid = filler.commit_vid();
    eff.commit_lsn = filler.commit_lsn();
    eff.ops.push_back(
        {TxnEffect::Op::Kind::kPut, 301, 2, std::string("filler")});
    std::lock_guard<std::mutex> g(commits_mu);
    commits.push_back(std::move(eff));
  }
  const Lsn cut = fs.log("redo")->durable_lsn();
  ASSERT_GE(cut, filler.commit_lsn());
  for (auto& w : workers) w.join();
  // Committed only now — beyond the cut: the crash erases this commit, so
  // recovery must not expose pk 300.
  ASSERT_TRUE(txns->Commit(&straddler).ok());
  ASSERT_GT(straddler.commit_lsn(), cut);
  const Lsn final_written = fs.log("redo")->written_lsn();

  // SIGKILL simulation: everything volatile is gone; a fresh shared store
  // receives the base pages, the non-log files (registry, base LSN) and
  // exactly the redo records at or below the durable watermark.
  PolarFs fs2;
  for (PageId id : fs.ListPages()) {
    std::string image;
    ASSERT_TRUE(fs.ReadPage(id, &image).ok());
    ASSERT_TRUE(fs2.WritePage(id, std::move(image)).ok());
  }
  for (const std::string& name : fs.ListFiles("")) {
    if (name.rfind("log/", 0) == 0) continue;  // logs rebuilt from the cut
    std::string data;
    ASSERT_TRUE(fs.ReadFile(name, &data).ok());
    ASSERT_TRUE(fs2.WriteFile(name, std::move(data)).ok());
  }
  std::vector<std::string> prefix;
  fs.log("redo")->Read(0, cut, &prefix);
  ASSERT_EQ(prefix.size(), cut);
  if (!prefix.empty()) {
    // Durable: these records survived the crash by definition (they were at
    // or below the fsync watermark), and the replication pipeline consumes
    // only the durable prefix of its source log.
    fs2.log("redo")->Append(std::move(prefix), /*durable=*/true);
  }
  ASSERT_EQ(fs2.log("redo")->written_lsn(), cut);

  // Reopen: boot a recovery node from the durable state and replay.
  Catalog catalog2;
  catalog2.Register(KvSchema());
  RoNodeOptions ro_opts;
  RoNode node("recovered", &fs2, &catalog2, ro_opts);
  ASSERT_TRUE(node.Boot().ok());
  ASSERT_TRUE(node.CatchUpNow().ok());

  // Expected state: the bulk load plus every committed transaction whose
  // commit record is inside the durable prefix, applied in commit-VID
  // order (2PL serializes conflicting transactions, and VID order is their
  // commit order).
  std::sort(commits.begin(), commits.end(),
            [](const TxnEffect& a, const TxnEffect& b) { return a.vid < b.vid; });
  std::map<int64_t, std::pair<int64_t, std::string>> model;
  for (const Row& r : base) {
    model[AsInt(r[0])] = {AsInt(r[1]), AsString(r[2])};
  }
  Vid last_vid = 0;
  size_t included = 0;
  for (const TxnEffect& eff : commits) {
    if (eff.commit_lsn > cut) continue;  // lost with the crash
    last_vid = std::max(last_vid, eff.vid);
    ++included;
    for (const TxnEffect::Op& op : eff.ops) {
      if (op.kind == TxnEffect::Op::Kind::kPut) {
        model[op.pk] = {op.v, op.payload};
      } else {
        model.erase(op.pk);
      }
    }
  }
  SCOPED_TRACE(::testing::Message()
               << "cut=" << cut << " committed=" << commits.size()
               << " included=" << included);
  // The cut must be a real crash: some history recovered, some lost. The
  // straddler is the *guaranteed* loss (its commit record is beyond the cut
  // by construction and its effect is deliberately absent from the model);
  // recorded worker commits may or may not land beyond the cut depending on
  // scheduling, so no expectation is placed on them.
  if (cut > 0) {
    EXPECT_GT(included, 0u);
  }
  EXPECT_GT(final_written, cut);

  EXPECT_EQ(node.applied_vid(), last_vid);

  std::vector<Row> expected;
  for (const auto& [pk, vp] : model) {
    expected.push_back({pk, vp.first, vp.second});
  }
  std::vector<Row> got;
  ASSERT_TRUE(node.ExecuteColumn(LScan(1, {0, 1, 2}), &got).ok());
  EXPECT_EQ(testing_util::Canonicalize(got),
            testing_util::Canonicalize(expected));

  // --- Row-replica arm (ARIES undo at boot) ------------------------------
  // Before the undo pass the raw replica pages may contain page effects of
  // transactions whose commit record lies beyond the cut (their versions
  // are still unstamped). The undo pass rolls every such row back to the
  // newest committed image its version chain recorded; afterwards the raw
  // tree, the snapshot-consistent row engine, and the row-count metadata
  // must all equal the same durable-prefix model. Disabling the undo pass
  // leaves the in-flight effects in the pages and fails the raw-state
  // assertion below.
  const size_t undone = node.RecoverRowReplica();
  SCOPED_TRACE(::testing::Message() << "undone=" << undone);
  EXPECT_GE(undone, 1u);  // at least the deterministic straddler
  RowTable* replica = node.engine()->GetTable(1);
  ASSERT_NE(replica, nullptr);
  std::vector<Row> raw;
  ASSERT_TRUE(replica->Scan([&](int64_t, const Row& r) {
    raw.push_back(r);
    return true;
  }).ok());
  EXPECT_EQ(testing_util::Canonicalize(raw),
            testing_util::Canonicalize(expected));
  EXPECT_EQ(replica->row_count(), expected.size());
  std::vector<Row> row_got;
  ASSERT_TRUE(node.ExecuteRow(LScan(1, {0, 1, 2}), &row_got).ok());
  EXPECT_EQ(testing_util::Canonicalize(row_got),
            testing_util::Canonicalize(expected));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashRecoveryTest,
                         ::testing::Values(1, 2, 3));

// --- Targeted kill at each instrumented I/O seam ---------------------------
// The property above samples the crash point with a healthy process; here the
// death is injected *inside* a specific storage seam via fault::Kind::kCrash —
// the Nth traversal of the seam latches the crash flag and every instrumented
// I/O fails from that instant, exactly like the process dying mid-call. The
// durable watermark freezes wherever group commit had gotten; reboot into a
// fresh store carrying that prefix must reproduce it exactly, for every seam
// on the commit path. Inclusion in the model is decided by the commit
// record's LSN against the frozen watermark, NOT by the client-observed
// Commit() status: a commit whose record was already durable can still see
// its SyncTo fail once the crash latches, and the client's error does not
// un-happen the durable commit.
class FaultPointCrashTest : public ::testing::TestWithParam<const char*> {
 protected:
  void TearDown() override { fault::Registry::Instance().Reset(); }
};

TEST_P(FaultPointCrashTest, RebootAfterSeamCrashRecoversDurablePrefix) {
  const std::string seam = GetParam();
  const uint64_t seed = testing_util::TestSeed(2000);
  const int txns_per_thread = testing_util::TestIters(150);
  SCOPED_TRACE(::testing::Message() << "seam=" << seam
                                    << " IMCI_TEST_SEED=" << seed);

  PolarFs fs;
  Catalog catalog;
  RwNode rw(&fs, &catalog);
  ASSERT_TRUE(rw.CreateTable(KvSchema()).ok());
  std::vector<Row> base;
  for (int64_t pk = 0; pk < 100; pk += 2) {
    base.push_back({pk, int64_t(0), std::string("base")});
  }
  ASSERT_TRUE(rw.BulkLoad(1, base).ok());
  ASSERT_TRUE(rw.FinishLoad().ok());

  struct Committed {
    Vid vid;
    Lsn lsn;
    int64_t pk;
    int64_t v;
    std::string payload;
  };
  std::mutex mu;
  std::vector<Committed> recorded;
  std::atomic<uint64_t> failed_commits{0};
  auto* txns = rw.txn_manager();
  {
    fault::Registry::Instance().Reseed(seed);
    fault::Policy death;
    death.kind = fault::Kind::kCrash;
    death.hit_at = 30;  // deterministic: dies on the 30th traversal
    fault::ScopedFault guard(seam, death);

    // Insert-only workload on disjoint per-thread key ranges: every commit's
    // logical effect is independent, so the model needs no cross-thread
    // ordering — only the LSN cut.
    constexpr int kThreads = 2;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        Rng rng(seed + t);
        int post_crash_attempts = 0;
        for (int i = 0; i < txns_per_thread; ++i) {
          Transaction txn;
          txns->Begin(&txn);
          const int64_t pk = 1000 + t * 1000 + i;
          const int64_t v = static_cast<int64_t>(rng.Next() % 100000);
          std::string payload = rng.RandomString(0, 24);
          if (!txns->Insert(&txn, 1, {pk, v, payload}).ok()) {
            (void)txns->Rollback(&txn);
          } else {
            if (!txns->Commit(&txn).ok()) {
              failed_commits.fetch_add(1);
            }
            if (txn.commit_lsn() != 0) {
              std::lock_guard<std::mutex> g(mu);
              recorded.push_back(
                  {txn.commit_vid(), txn.commit_lsn(), pk, v, payload});
            }
          }
          // The dead "process" can't make progress: a few post-crash
          // attempts prove commits now fail, then stop burning time.
          if (fault::Registry::Instance().crashed() &&
              ++post_crash_attempts > 3) {
            break;
          }
        }
      });
    }
    for (auto& w : workers) w.join();
    // The seam must actually have killed the process mid-run, with commits
    // refused afterwards.
    ASSERT_TRUE(fault::Registry::Instance().crashed());
    EXPECT_GT(failed_commits.load(), 0u);
  }  // "reboot": the crash latch clears with the scope

  // The watermark froze when the crash latched (the poisoned log refuses
  // fsync); everything at or below it survives into the fresh store.
  const Lsn cut = fs.log("redo")->durable_lsn();
  PolarFs fs2;
  for (PageId id : fs.ListPages()) {
    std::string image;
    ASSERT_TRUE(fs.ReadPage(id, &image).ok());
    ASSERT_TRUE(fs2.WritePage(id, std::move(image)).ok());
  }
  for (const std::string& name : fs.ListFiles("")) {
    if (name.rfind("log/", 0) == 0) continue;
    std::string data;
    ASSERT_TRUE(fs.ReadFile(name, &data).ok());
    ASSERT_TRUE(fs2.WriteFile(name, std::move(data)).ok());
  }
  std::vector<std::string> prefix;
  fs.log("redo")->Read(0, cut, &prefix);
  ASSERT_EQ(prefix.size(), cut);
  if (!prefix.empty()) {
    fs2.log("redo")->Append(std::move(prefix), /*durable=*/true);
  }

  Catalog catalog2;
  catalog2.Register(KvSchema());
  RoNodeOptions ro_opts;
  RoNode node("rebooted", &fs2, &catalog2, ro_opts);
  ASSERT_TRUE(node.Boot().ok());
  ASSERT_TRUE(node.CatchUpNow().ok());

  std::map<int64_t, std::pair<int64_t, std::string>> model;
  for (const Row& r : base) {
    model[AsInt(r[0])] = {AsInt(r[1]), AsString(r[2])};
  }
  std::sort(recorded.begin(), recorded.end(),
            [](const Committed& a, const Committed& b) { return a.vid < b.vid; });
  Vid last_vid = 0;
  size_t included = 0;
  for (const Committed& c : recorded) {
    if (c.lsn > cut) continue;  // enqueued but never durable: died with the seam
    last_vid = std::max(last_vid, c.vid);
    ++included;
    model[c.pk] = {c.v, c.payload};
  }
  SCOPED_TRACE(::testing::Message() << "cut=" << cut << " recorded="
                                    << recorded.size() << " included="
                                    << included);
  EXPECT_GT(included, 0u);  // hit_at=30 lets a real prefix commit first
  EXPECT_EQ(node.applied_vid(), last_vid);

  std::vector<Row> expected;
  for (const auto& [pk, vp] : model) {
    expected.push_back({pk, vp.first, vp.second});
  }
  std::vector<Row> got;
  ASSERT_TRUE(node.ExecuteColumn(LScan(1, {0, 1, 2}), &got).ok());
  EXPECT_EQ(testing_util::Canonicalize(got),
            testing_util::Canonicalize(expected));

  // Row replica after the boot-time undo pass (in-flight page effects of
  // commits that died with the seam get rolled back).
  (void)node.RecoverRowReplica();
  RowTable* replica = node.engine()->GetTable(1);
  ASSERT_NE(replica, nullptr);
  std::vector<Row> raw;
  ASSERT_TRUE(replica->Scan([&](int64_t, const Row& r) {
    raw.push_back(r);
    return true;
  }).ok());
  EXPECT_EQ(testing_util::Canonicalize(raw),
            testing_util::Canonicalize(expected));
}

// Every guaranteed commit-path seam: the record enqueue (logstore.append),
// the backing file append (polarfs.append_file), and the group-commit fsync
// (polarfs.fsync).
INSTANTIATE_TEST_SUITE_P(Seams, FaultPointCrashTest,
                         ::testing::Values("logstore.append",
                                           "polarfs.append_file",
                                           "polarfs.fsync"));

// --- Mid-transaction checkpoint --------------------------------------------
// A checkpoint taken while a transaction is in flight flushes replica pages
// that already contain the transaction's *undecided* page effects (Phase#1
// replay is commit-agnostic). The inflight blob therefore carries the newest
// committed pre-image of every row such a transaction touched, and a booting
// node rebuilds its version chains from them — gating the dirty tree images
// behind the commit decision exactly like the node that took the checkpoint
// did, and keeping them undoable should the decision never arrive. Reverting
// the pre-image plumbing (SerializeInflight's touched-row section or
// RestoreInflight's InstallBootInflight calls) fails both arms below: the
// booted node would read in-flight after-images as committed state, and the
// recovery node's undo pass would find no chains to roll back.
TEST(MidTxnCheckpointTest, BootedNodeGatesUndecidedCheckpointEffects) {
  PolarFs fs;
  Catalog catalog;
  RwNode rw(&fs, &catalog);
  ASSERT_TRUE(rw.CreateTable(KvSchema()).ok());
  std::vector<Row> base;
  for (int64_t pk = 0; pk < 20; pk += 2) {
    base.push_back({pk, int64_t(0), std::string("base")});
  }
  ASSERT_TRUE(rw.BulkLoad(1, base).ok());
  ASSERT_TRUE(rw.FinishLoad().ok());

  RoNodeOptions ro_opts;
  RoNode leader("leader", &fs, &catalog, ro_opts);
  ASSERT_TRUE(leader.Boot().ok());
  ASSERT_TRUE(leader.CatchUpNow().ok());

  auto* txns = rw.txn_manager();
  Transaction committed;
  txns->Begin(&committed);
  ASSERT_TRUE(txns->Update(&committed, 1, 2,
                           {int64_t(2), int64_t(100), std::string("committed")})
                  .ok());
  ASSERT_TRUE(txns->Commit(&committed).ok());

  // In flight across the checkpoint: an update, a delete and an insert, all
  // shipped commit-ahead, none decided.
  Transaction t;
  txns->Begin(&t);
  ASSERT_TRUE(
      txns->Update(&t, 1, 4, {int64_t(4), int64_t(999), std::string("dirty")})
          .ok());
  ASSERT_TRUE(txns->Delete(&t, 1, 6).ok());
  ASSERT_TRUE(
      txns->Insert(&t, 1, {int64_t(100), int64_t(7), std::string("ghost")})
          .ok());
  // The in-flight DMLs are shipped commit-ahead but sit above the durable
  // watermark until some batch fsync covers them — and the pipeline consumes
  // only the durable prefix. Fsync explicitly so the leader buffers them and
  // the checkpoint below carries the in-flight section this test exercises.
  ASSERT_TRUE(fs.log("redo")->Sync().ok());

  ASSERT_TRUE(leader.CatchUpNow().ok());
  ASSERT_TRUE(leader.pipeline()->TakeCheckpoint(1).ok());

  // The committed prefix at the checkpoint: the base rows with pk 2 updated
  // and no trace of the in-flight transaction.
  std::map<int64_t, std::pair<int64_t, std::string>> model;
  for (const Row& r : base) {
    model[AsInt(r[0])] = {AsInt(r[1]), AsString(r[2])};
  }
  model[2] = {100, "committed"};
  std::vector<Row> expected;
  for (const auto& [pk, vp] : model) {
    expected.push_back({pk, vp.first, vp.second});
  }

  // Arm 1: a node booted from the checkpoint before the decision. Its raw
  // replica tree holds the dirty effects, but snapshot reads resolve through
  // the boot-installed chains to the committed pre-images.
  RoNode booted("booted", &fs, &catalog, ro_opts);
  ASSERT_TRUE(booted.Boot().ok());
  std::vector<Row> got;
  ASSERT_TRUE(booted.ExecuteRow(LScan(1, {0, 1, 2}), &got).ok());
  EXPECT_EQ(testing_util::Canonicalize(got),
            testing_util::Canonicalize(expected));

  // Arm 2: crash right here — the decision never becomes durable. A recovery
  // node boots from the checkpoint in a fresh store; the undo pass restores
  // the committed images the checkpoint's pre-image section preserved.
  const Lsn cut = fs.log("redo")->written_lsn();
  PolarFs fs2;
  for (PageId id : fs.ListPages()) {
    std::string image;
    ASSERT_TRUE(fs.ReadPage(id, &image).ok());
    ASSERT_TRUE(fs2.WritePage(id, std::move(image)).ok());
  }
  for (const std::string& name : fs.ListFiles("")) {
    if (name.rfind("log/", 0) == 0) continue;
    std::string data;
    ASSERT_TRUE(fs.ReadFile(name, &data).ok());
    ASSERT_TRUE(fs2.WriteFile(name, std::move(data)).ok());
  }
  std::vector<std::string> prefix;
  fs.log("redo")->Read(0, cut, &prefix);
  ASSERT_EQ(prefix.size(), cut);
  fs2.log("redo")->Append(std::move(prefix), /*durable=*/true);

  Catalog catalog2;
  catalog2.Register(KvSchema());
  RoNode rec("rec", &fs2, &catalog2, ro_opts);
  ASSERT_TRUE(rec.Boot().ok());
  ASSERT_TRUE(rec.CatchUpNow().ok());
  EXPECT_GE(rec.RecoverRowReplica(), 3u);  // the update, delete and insert
  RowTable* replica = rec.engine()->GetTable(1);
  ASSERT_NE(replica, nullptr);
  std::vector<Row> raw;
  ASSERT_TRUE(replica->Scan([&](int64_t, const Row& r) {
    raw.push_back(r);
    return true;
  }).ok());
  EXPECT_EQ(testing_util::Canonicalize(raw),
            testing_util::Canonicalize(expected));
  EXPECT_EQ(replica->row_count(), expected.size());

  // Back on the live store the decision arrives, and the booted node's gated
  // effects become visible wholesale.
  ASSERT_TRUE(txns->Commit(&t).ok());
  ASSERT_TRUE(booted.CatchUpNow().ok());
  model[4] = {999, "dirty"};
  model.erase(6);
  model[100] = {7, "ghost"};
  std::vector<Row> after;
  for (const auto& [pk, vp] : model) {
    after.push_back({pk, vp.first, vp.second});
  }
  std::vector<Row> row_after;
  ASSERT_TRUE(booted.ExecuteRow(LScan(1, {0, 1, 2}), &row_after).ok());
  EXPECT_EQ(testing_util::Canonicalize(row_after),
            testing_util::Canonicalize(after));
  std::vector<Row> col_after;
  ASSERT_TRUE(booted.ExecuteColumn(LScan(1, {0, 1, 2}), &col_after).ok());
  EXPECT_EQ(testing_util::Canonicalize(col_after),
            testing_util::Canonicalize(after));
}

}  // namespace
}  // namespace imci
