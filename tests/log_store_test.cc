#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "log/log_store.h"
#include "polarfs/polarfs.h"

namespace imci {
namespace {

/// A PolarFs with small log segments so a handful of records spans several
/// segment files — every boundary case is reachable with tiny logs.
PolarFs::Options SmallSegments(size_t bytes = 64) {
  PolarFs::Options opt;
  opt.log_segment_bytes = bytes;
  return opt;
}

std::vector<std::string> ReadAll(const LogStore* log) {
  std::vector<std::string> out;
  log->Read(0, log->written_lsn(), &out);
  return out;
}

TEST(LogStoreTest, AppendAndReadWithDenseLsns) {
  PolarFs fs;
  LogStore* log = fs.log("redo");
  EXPECT_EQ(log->written_lsn(), 0u);
  Lsn last = log->Append({"a", "b", "c"}, /*durable=*/true);
  EXPECT_EQ(last, 3u);
  EXPECT_EQ(log->written_lsn(), 3u);
  EXPECT_EQ(fs.fsync_count(), 1u);
  std::vector<std::string> out;
  Lsn read = log->Read(0, 10, &out);
  EXPECT_EQ(read, 3u);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], "a");
  EXPECT_EQ(out[2], "c");
  // Partial range (from exclusive, to inclusive).
  out.clear();
  log->Read(1, 2, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], "b");
}

TEST(LogStoreTest, WaitForWakesOnAppend) {
  PolarFs fs;
  LogStore* log = fs.log("redo");
  std::thread appender([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    log->Append({"hello"}, false);
  });
  Lsn got = log->WaitFor(0, 2'000'000);
  EXPECT_GE(got, 1u);
  appender.join();
  EXPECT_EQ(log->WaitFor(5, 20'000), 1u);  // times out below the target
}

TEST(LogStoreTest, ConcurrentAppendsAssignDenseLsns) {
  PolarFs fs(SmallSegments(256));
  LogStore* log = fs.log("redo");
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 100; ++i) log->Append({"r"}, false);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(log->written_lsn(), 800u);
  EXPECT_EQ(ReadAll(log).size(), 800u);
  EXPECT_GT(log->segment_count(), 1u);
}

TEST(LogStoreTest, SegmentRolloverMidBatchKeepsRecordsIntact) {
  PolarFs fs(SmallSegments(48));
  LogStore* log = fs.log("redo");
  // One transaction's batch of records is larger than a whole segment: the
  // roll must happen at record boundaries, never inside a record.
  std::vector<std::string> batch;
  for (int i = 0; i < 10; ++i) {
    batch.push_back("record-" + std::to_string(i) + "-payload");
  }
  EXPECT_EQ(log->Append(batch, true), 10u);
  EXPECT_GE(log->segment_count(), 3u);
  auto out = ReadAll(log);
  ASSERT_EQ(out.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(out[i], "record-" + std::to_string(i) + "-payload");
  }
  // The durable layout must agree with the in-memory index after reopen.
  ASSERT_TRUE(log->Reopen().ok());
  EXPECT_EQ(log->written_lsn(), 10u);
  EXPECT_EQ(ReadAll(log), out);
}

TEST(LogStoreTest, TruncateBelowAtAndAboveTheWatermark) {
  PolarFs fs(SmallSegments(32));
  LogStore* log = fs.log("redo");
  for (int i = 1; i <= 12; ++i) {
    log->Append({"payload-" + std::to_string(i)}, false);
  }
  const size_t all_segments = fs.ListFiles("log/redo/seg_").size();
  ASSERT_GE(all_segments, 4u);

  // Below the first sealed boundary: nothing is recyclable yet.
  (void)log->Truncate(0);
  EXPECT_EQ(log->truncated_lsn(), 0u);
  EXPECT_EQ(fs.ListFiles("log/redo/seg_").size(), all_segments);

  // Mid-log watermark: only whole segments at or below it are recycled, so
  // the cut never outruns the watermark.
  (void)log->Truncate(5);
  const Lsn cut = log->truncated_lsn();
  EXPECT_GT(cut, 0u);
  EXPECT_LE(cut, 5u);
  EXPECT_LT(fs.ListFiles("log/redo/seg_").size(), all_segments);
  std::vector<std::string> out;
  EXPECT_EQ(log->Read(0, 100, &out), 12u);  // recycled prefix skipped
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.front(), "payload-" + std::to_string(cut + 1));

  // At/above the written tail: every sealed segment goes, the active one
  // stays, and the log keeps appending with dense LSNs.
  (void)log->Truncate(log->written_lsn());
  EXPECT_EQ(fs.ListFiles("log/redo/seg_").size(), 1u);
  EXPECT_EQ(log->Append({"payload-13"}, false), 13u);
  out.clear();
  log->Read(log->truncated_lsn(), 100, &out);
  EXPECT_EQ(out.back(), "payload-13");
}

TEST(LogStoreTest, TruncationWatermarkSurvivesReopen) {
  PolarFs fs(SmallSegments(32));
  LogStore* log = fs.log("redo");
  for (int i = 1; i <= 8; ++i) log->Append({"r" + std::to_string(i)}, false);
  (void)log->Truncate(4);
  const Lsn cut = log->truncated_lsn();
  ASSERT_GT(cut, 0u);
  (void)fs.ReopenLogs();
  EXPECT_EQ(log->truncated_lsn(), cut);
  EXPECT_EQ(log->written_lsn(), 8u);
  EXPECT_EQ(log->Append({"r9"}, false), 9u);
}

TEST(LogStoreTest, TornTailInsideSegmentIsTrimmedOnReopen) {
  PolarFs fs(SmallSegments(1 << 16));  // one segment holds everything
  LogStore* log = fs.log("redo");
  for (int i = 1; i <= 5; ++i) {
    log->Append({"payload-" + std::to_string(i)}, true);
  }
  // Crash mid-write: the durable tail loses its last bytes.
  const std::string seg = LogStore::SegmentFileName("redo", 1);
  std::string data;
  ASSERT_TRUE(fs.ReadFile(seg, &data).ok());
  ASSERT_TRUE(fs.WriteFile(seg, data.substr(0, data.size() - 3)).ok());

  (void)fs.ReopenLogs();
  EXPECT_EQ(log->written_lsn(), 4u);
  auto out = ReadAll(log);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out.back(), "payload-4");
  // The log continues after the tear with dense LSNs.
  EXPECT_EQ(log->Append({"payload-5b"}, true), 5u);
  EXPECT_EQ(ReadAll(log).back(), "payload-5b");
}

TEST(LogStoreTest, TornTailOnSegmentBoundaryFallsBackToPreviousSegment) {
  PolarFs fs(SmallSegments(32));
  LogStore* log = fs.log("redo");
  for (int i = 1; i <= 6; ++i) {
    log->Append({"payload-" + std::to_string(i)}, true);
  }
  ASSERT_GE(log->segment_count(), 2u);
  // The tear lands exactly on a segment boundary: the newest segment file is
  // lost in its entirety (zero bytes survived the crash).
  auto files = fs.ListFiles("log/redo/seg_");
  std::sort(files.begin(), files.end());
  const std::string last_seg = files.back();
  ASSERT_TRUE(fs.WriteFile(last_seg, "").ok());

  (void)fs.ReopenLogs();
  // Recovery ends at the previous segment's last record and reclaims the
  // empty file.
  const Lsn tail = log->written_lsn();
  ASSERT_LT(tail, 6u);
  ASSERT_GT(tail, 0u);
  auto out = ReadAll(log);
  ASSERT_EQ(out.size(), tail - log->truncated_lsn());
  EXPECT_EQ(out.back(), "payload-" + std::to_string(tail));
  std::string gone;
  EXPECT_TRUE(fs.ReadFile(last_seg, &gone).IsNotFound());
  // New appends restart a fresh segment at the recovered tail.
  EXPECT_EQ(log->Append({"after-crash"}, true), tail + 1);
  EXPECT_EQ(ReadAll(log).back(), "after-crash");
}

TEST(LogStoreTest, CorruptedMiddleRecordCutsRecoveryAndDropsOrphans) {
  PolarFs fs(SmallSegments(32));
  LogStore* log = fs.log("redo");
  for (int i = 1; i <= 9; ++i) {
    log->Append({"payload-" + std::to_string(i)}, true);
  }
  const size_t before = fs.ListFiles("log/redo/seg_").size();
  ASSERT_GE(before, 3u);
  // Flip a byte in the middle of the *second* segment: recovery must stop
  // there and delete every later (now unreachable) segment.
  auto files = fs.ListFiles("log/redo/seg_");
  std::sort(files.begin(), files.end());
  std::string data;
  ASSERT_TRUE(fs.ReadFile(files[1], &data).ok());
  data[data.size() / 2] ^= 0x5a;
  ASSERT_TRUE(fs.WriteFile(files[1], std::move(data)).ok());

  (void)fs.ReopenLogs();
  const Lsn tail = log->written_lsn();
  EXPECT_LT(tail, 9u);
  EXPECT_GE(tail, 2u);  // the first segment survived intact
  EXPECT_LT(fs.ListFiles("log/redo/seg_").size(), before);
  auto out = ReadAll(log);
  EXPECT_EQ(out.size(), tail);
  EXPECT_EQ(out.back(), "payload-" + std::to_string(tail));
  EXPECT_EQ(log->Append({"fresh"}, true), tail + 1);
}

}  // namespace
}  // namespace imci
