// Concurrency suites for the arena-backed MVCC version chains: latch-free
// snapshot readers racing Install/Stamp/Prune exactly the way RowTable
// drives them (tsan proves the publication protocol), and reclamation
// tests proving no version reachable by a live snapshot is ever freed —
// including a death-test arm that reverts the reader-grace guard and
// demonstrates the resulting use-after-free under asan.

#include <atomic>
#include <cstring>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/arena.h"
#include "rowstore/mvcc.h"
#include "tests/test_util.h"

#if defined(__SANITIZE_ADDRESS__)
#define IMCI_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define IMCI_ASAN 1
#endif
#endif

namespace imci {
namespace {

std::string ImageFor(Vid vid) {
  // Payload encodes the commit VID so readers can detect torn images.
  std::string img(16, '\0');
  std::memcpy(img.data(), &vid, sizeof(vid));
  img.back() = static_cast<char>(vid & 0xFF);
  return img;
}

Vid VidOfImage(std::string_view img) {
  Vid vid = 0;
  std::memcpy(&vid, img.data(), sizeof(vid));
  return vid;
}

// The RowTable read protocol, reproduced at the VersionChains layer: the
// "table latch" (a shared_mutex) is taken only to harvest the chain head;
// resolution walks arena nodes with no lock, inside an ArenaReadGuard.
TEST(MvccArenaStressTest, LatchFreeReadersRaceInstallStampPrune) {
  VersionChains chains;
  std::shared_mutex latch;  // plays RowTable::latch_
  std::atomic<Vid> published{0};
  std::atomic<bool> stop{false};
  constexpr int kPks = 8;
  const int iters = testing_util::TestIters(20000);

  std::thread writer([&] {
    Vid next_vid = 0;
    std::string committed[kPks];
    for (int i = 0; i < iters; ++i) {
      const int64_t pk = i % kPks;
      const Tid tid = static_cast<Tid>(i + 1);
      const Vid vid = ++next_vid;
      const std::string img = ImageFor(vid);
      {
        std::unique_lock<std::shared_mutex> g(latch);
        chains.Install(pk, tid, /*deleted=*/false, img,
                       committed[pk].empty() ? nullptr : &committed[pk]);
        // Trim below the currently published VID: registration-free readers
        // must survive the cut via the SnapshotGetCurrent retry protocol.
        chains.Stamp(tid, vid, {pk}, published.load());
      }
      committed[pk] = img;
      published.store(vid, std::memory_order_release);
      if (i % 128 == 127) {
        std::unique_lock<std::shared_mutex> g(latch);
        chains.Prune(published.load());
      }
    }
    stop.store(true);
  });

  std::vector<std::thread> readers;
  std::atomic<uint64_t> resolved{0};
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      // Race while the writer runs, then one guaranteed full pass over the
      // final state (the writer may outpace thread startup on fast runs).
      for (bool last = false; !last;) {
        last = stop.load(std::memory_order_acquire);
        for (int64_t pk = 0; pk < kPks; ++pk) {
          ArenaReadGuard guard;
          for (;;) {
            const RowVersion* head = nullptr;
            Vid s = 0;
            {
              std::shared_lock<std::shared_mutex> g(latch);
              s = published.load(std::memory_order_acquire);
              head = chains.Head(pk);
            }
            if (head == nullptr) break;
            const RowVersion* v = VersionChains::ResolveChain(head, s);
            if (v != nullptr) {
              // The stamp word and the payload must agree — a torn image
              // or a half-published node trips this (and tsan).
              const Vid vid = v->vid();
              ASSERT_LE(vid, s);
              if (vid != 0) {
                ASSERT_EQ(VidOfImage(v->image()), vid);
              }
              resolved.fetch_add(1, std::memory_order_relaxed);
              break;
            }
            if (published.load(std::memory_order_acquire) == s) break;
            // A trim raced past our unregistered sample: re-harvest.
          }
        }
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();
  EXPECT_GT(resolved.load(), 0u);

  std::unique_lock<std::shared_mutex> g(latch);
  chains.Prune(published.load());
  EXPECT_EQ(chains.chain_count(), 0u);
  EXPECT_EQ(chains.MaxChainLength(), 0u);
}

// A reader holding a guard pins every version it can reach, across trims
// *and* bulk epoch drops: the version bytes must stay intact (asan makes
// any premature free fatal).
TEST(MvccArenaStressTest, LiveSnapshotPinsVersionsAcrossEpochDrop) {
  VersionChains chains;
  const std::string base = "base-image-of-row-one";
  chains.Install(1, 10, false, ImageFor(2), &base);
  chains.Stamp(10, 2, {1}, 0);
  chains.Prune(0);  // seals the epoch holding vid-2 and the base

  ArenaReadGuard guard;
  const RowVersion* pinned = nullptr;
  ASSERT_TRUE(chains.Resolve(1, 2, &pinned));
  ASSERT_NE(pinned, nullptr);
  ASSERT_EQ(pinned->vid(), 2u);

  // New history, then prune far above the pinned snapshot: vid-2 and the
  // base are unlinked and their epoch dropped — but the guard predates the
  // retire, so the memory survives until it closes.
  chains.Install(1, 11, false, ImageFor(5), nullptr);
  chains.Stamp(11, 5, {1}, 0);
  chains.Prune(5);
  EXPECT_EQ(VidOfImage(pinned->image()), 2u);
  const RowVersion* older = pinned->next();
  ASSERT_NE(older, nullptr);
  EXPECT_EQ(older->image(), base);

  // The chain itself collapsed to the tree image (caught up to vid 5) —
  // only the guard keeps the unlinked history readable.
  EXPECT_EQ(chains.chain_count(), 0u);
  EXPECT_GE(chains.Stats().epochs_dropped, 1u);
}

#ifdef IMCI_ASAN
// Revert the grace guard (free dropped chunks immediately) and show the
// exact failure it prevents: a reader that resolved a version before the
// prune dereferences freed memory. Without the guard this suite dies under
// asan — proof the reclamation protocol is load-bearing, not decorative.
TEST(MvccArenaStressDeathTest, ImmediateReclaimFaultsUnderLiveSnapshot) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH(
      {
        VersionArena::test_unsafe_immediate_reclaim = true;
        VersionChains chains;
        const std::string base = "base-image";
        chains.Install(1, 10, false, ImageFor(2), &base);
        chains.Stamp(10, 2, {1}, 0);
        chains.Prune(0);  // seal the epoch holding vid-2 + base
        ArenaReadGuard guard;
        const RowVersion* pinned = nullptr;
        if (!chains.Resolve(1, 2, &pinned) || pinned == nullptr) abort();
        chains.Install(1, 11, false, ImageFor(5), nullptr);
        chains.Stamp(11, 5, {1}, 0);
        chains.Prune(5);  // drops the cold epoch; flag frees it NOW
        // Use-after-free: the guard should have pinned this.
        volatile char c = pinned->image()[0];
        (void)c;
      },
      "");
}
#endif

}  // namespace
}  // namespace imci
