#include <gtest/gtest.h>

#include <thread>

#include "tests/test_util.h"

namespace imci {
namespace {

std::shared_ptr<const Schema> SimpleSchema() {
  std::vector<ColumnDef> cols;
  cols.push_back({"id", DataType::kInt64, false, true});
  cols.push_back({"v", DataType::kInt64, false, true});
  return std::make_shared<Schema>(1, "t1", cols, 0);
}

class ClusterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterOptions opts;
    opts.initial_ro_nodes = 2;
    opts.ro.imci.row_group_size = 256;
    cluster_ = std::make_unique<Cluster>(opts);
    ASSERT_TRUE(cluster_->CreateTable(SimpleSchema()).ok());
    std::vector<Row> rows;
    for (int64_t i = 0; i < 1000; ++i) rows.push_back({i, i * 2});
    ASSERT_TRUE(cluster_->BulkLoad(1, std::move(rows)).ok());
    ASSERT_TRUE(cluster_->Open().ok());
  }
  std::unique_ptr<Cluster> cluster_;
};

TEST_F(ClusterTest, BulkLoadedDataVisibleOnAllRoNodes) {
  auto plan = LAgg(LScan(1, {0, 1}), {},
                   {AggSpec{AggKind::kCountStar, nullptr},
                    AggSpec{AggKind::kSum, Col(1, DataType::kInt64)}});
  for (RoNode* ro : cluster_->ro_nodes()) {
    std::vector<Row> out;
    ASSERT_TRUE(ro->ExecuteColumn(plan, &out).ok());
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(AsInt(out[0][0]), 1000);
    EXPECT_DOUBLE_EQ(NumericValue(out[0][1]), 999.0 * 1000.0);
  }
}

TEST_F(ClusterTest, ProxyBalancesByActiveSessions) {
  RoNode* a = cluster_->ro(0);
  RoNode* b = cluster_->ro(1);
  a->EnterSession();
  a->EnterSession();
  EXPECT_EQ(cluster_->proxy()->PickRo(), b);
  b->EnterSession();
  b->EnterSession();
  b->EnterSession();
  EXPECT_EQ(cluster_->proxy()->PickRo(), a);
  a->LeaveSession();
  a->LeaveSession();
  b->LeaveSession();
  b->LeaveSession();
  b->LeaveSession();
}

TEST_F(ClusterTest, StrongConsistencyReadsYourWrites) {
  auto* txns = cluster_->rw()->txn_manager();
  for (int round = 0; round < 20; ++round) {
    Transaction txn;
    txns->Begin(&txn);
    ASSERT_TRUE(
        txns->Insert(&txn, 1, {int64_t(10000 + round), int64_t(1)}).ok());
    ASSERT_TRUE(txns->Commit(&txn).ok());
    // A strong read issued right after commit must observe it (§6.4).
    auto plan = LAgg(
        LScan(1, {0}, Ge(Col(0, DataType::kInt64), ConstInt(10000))), {},
        {AggSpec{AggKind::kCountStar, nullptr}});
    std::vector<Row> out;
    ASSERT_TRUE(cluster_->proxy()
                    ->ExecuteQuery(plan, &out, Consistency::kStrong)
                    .ok());
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(AsInt(out[0][0]), round + 1);
  }
}

TEST_F(ClusterTest, LeaderDesignationAndFailover) {
  EXPECT_TRUE(cluster_->ro(0)->is_leader());
  EXPECT_FALSE(cluster_->ro(1)->is_leader());
  ASSERT_TRUE(cluster_->RemoveRoNode(0).ok());
  ASSERT_NE(cluster_->leader(), nullptr);
  EXPECT_TRUE(cluster_->ro(0)->is_leader());
}

TEST_F(ClusterTest, ScaleOutFromCheckpointAndCatchUp) {
  auto* txns = cluster_->rw()->txn_manager();
  // Apply some post-load churn.
  for (int i = 0; i < 200; ++i) {
    Transaction txn;
    txns->Begin(&txn);
    ASSERT_TRUE(txns->Insert(&txn, 1, {int64_t(5000 + i), int64_t(i)}).ok());
    ASSERT_TRUE(txns->Commit(&txn).ok());
  }
  for (RoNode* ro : cluster_->ro_nodes()) {
    ASSERT_TRUE(ro->CatchUpNow().ok());
  }
  // Leader takes a checkpoint.
  ASSERT_TRUE(cluster_->TriggerCheckpoint().ok());
  // Wait for the background coordinator to fulfil it.
  for (int i = 0; i < 100; ++i) {
    std::string cur;
    if (cluster_->fs()->ReadFile("imci_ckpt/CURRENT", &cur).ok()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  // More churn after the checkpoint.
  for (int i = 0; i < 100; ++i) {
    Transaction txn;
    txns->Begin(&txn);
    ASSERT_TRUE(txns->Insert(&txn, 1, {int64_t(7000 + i), int64_t(i)}).ok());
    ASSERT_TRUE(txns->Commit(&txn).ok());
  }
  // Scale out: the new node boots from the checkpoint and catches up.
  RoNode* fresh = nullptr;
  ASSERT_TRUE(cluster_->AddRoNode(&fresh).ok());
  ASSERT_TRUE(fresh->CatchUpNow().ok());
  auto plan = LAgg(LScan(1, {0}), {},
                   {AggSpec{AggKind::kCountStar, nullptr}});
  std::vector<Row> out;
  ASSERT_TRUE(fresh->ExecuteColumn(plan, &out).ok());
  EXPECT_EQ(AsInt(out[0][0]), 1300);
  // And it serves the same answer as an established node.
  std::vector<Row> ref;
  RoNode* old_node = cluster_->ro(0);
  ASSERT_TRUE(old_node->CatchUpNow().ok());
  ASSERT_TRUE(old_node->ExecuteColumn(plan, &ref).ok());
  EXPECT_EQ(AsInt(ref[0][0]), 1300);
}

TEST_F(ClusterTest, ScaleOutWithoutCheckpointRebuildsFromRowStore) {
  RoNode* fresh = nullptr;
  ASSERT_TRUE(cluster_->AddRoNode(&fresh).ok());
  ASSERT_TRUE(fresh->CatchUpNow().ok());
  auto plan = LAgg(LScan(1, {0}), {},
                   {AggSpec{AggKind::kCountStar, nullptr}});
  std::vector<Row> out;
  ASSERT_TRUE(fresh->ExecuteColumn(plan, &out).ok());
  EXPECT_EQ(AsInt(out[0][0]), 1000);
}

TEST(LogRecycleTest, CheckpointTruncatesRedoSegmentsAndRoStillBootsAndCatchesUp) {
  ClusterOptions opts;
  opts.initial_ro_nodes = 1;
  opts.ro.imci.row_group_size = 256;
  opts.fs.log_segment_bytes = 4096;  // small segments: churn spans many
  Cluster cluster(opts);
  std::vector<ColumnDef> cols;
  cols.push_back({"id", DataType::kInt64, false, true});
  cols.push_back({"v", DataType::kInt64, false, true});
  ASSERT_TRUE(
      cluster.CreateTable(std::make_shared<Schema>(1, "t1", cols, 0)).ok());
  std::vector<Row> rows;
  for (int64_t i = 0; i < 200; ++i) rows.push_back({i, i});
  ASSERT_TRUE(cluster.BulkLoad(1, std::move(rows)).ok());
  ASSERT_TRUE(cluster.Open().ok());

  auto* txns = cluster.rw()->txn_manager();
  auto churn = [&](int64_t base, int n) {
    for (int i = 0; i < n; ++i) {
      Transaction txn;
      txns->Begin(&txn);
      ASSERT_TRUE(txns->Insert(&txn, 1, {base + i, int64_t(i)}).ok());
      ASSERT_TRUE(txns->Commit(&txn).ok());
    }
  };
  churn(5000, 400);
  RoNode* leader = cluster.leader();
  ASSERT_TRUE(leader->CatchUpNow().ok());
  const size_t segments_before =
      cluster.fs()->ListFiles("log/redo/seg_").size();
  ASSERT_GT(segments_before, 2u);

  // Leader checkpoints (quiesced), then the cluster recycles the log (§7).
  leader->StopReplication();
  ASSERT_TRUE(leader->pipeline()->TakeCheckpoint(1).ok());
  leader->StartReplication();
  Lsn recycled_upto = 0;
  ASSERT_TRUE(cluster.RecycleRedoLog(&recycled_upto).ok());
  EXPECT_GT(recycled_upto, 0u);
  const size_t segments_after =
      cluster.fs()->ListFiles("log/redo/seg_").size();
  EXPECT_LT(segments_after, segments_before);
  EXPECT_EQ(cluster.fs()->log("redo")->truncated_lsn(), recycled_upto);

  // Post-checkpoint churn, then scale-out: the new node must boot from the
  // checkpoint and catch up from its LSN over the recycled log.
  churn(9000, 150);
  RoNode* fresh = nullptr;
  ASSERT_TRUE(cluster.AddRoNode(&fresh).ok());
  ASSERT_TRUE(fresh->CatchUpNow().ok());
  auto plan =
      LAgg(LScan(1, {0}), {}, {AggSpec{AggKind::kCountStar, nullptr}});
  std::vector<Row> out;
  ASSERT_TRUE(fresh->ExecuteColumn(plan, &out).ok());
  EXPECT_EQ(AsInt(out[0][0]), 200 + 400 + 150);
  EXPECT_EQ(
      static_cast<uint64_t>(AsInt(out[0][0])),
      cluster.rw()->engine()->GetTable(1)->row_count());
}

TEST(CheckpointBootTest, TailReplaySkipsTransactionsAlreadyFoldedIntoCheckpoint) {
  // A checkpoint taken while a transaction is in flight records a start_lsn
  // *before* that transaction's first record — i.e. before commits that ARE
  // folded into the checkpoint. A node booting from it re-reads those
  // commits and must skip them by VID, or it double-applies (regression
  // test: the skip filter used to be assigned after the pipeline had
  // already copied its options, so it never took effect).
  ClusterOptions opts;
  opts.initial_ro_nodes = 1;
  opts.ro.imci.row_group_size = 256;
  Cluster cluster(opts);
  std::vector<ColumnDef> cols;
  cols.push_back({"id", DataType::kInt64, false, true});
  cols.push_back({"v", DataType::kInt64, false, true});
  ASSERT_TRUE(
      cluster.CreateTable(std::make_shared<Schema>(1, "t1", cols, 0)).ok());
  std::vector<Row> rows;
  for (int64_t i = 0; i < 10; ++i) rows.push_back({i, i});
  ASSERT_TRUE(cluster.BulkLoad(1, std::move(rows)).ok());
  ASSERT_TRUE(cluster.Open().ok());
  auto* txns = cluster.rw()->txn_manager();

  // A and C ship their DMLs (commit-ahead) but stay in flight...
  Transaction a, c;
  txns->Begin(&a);
  ASSERT_TRUE(txns->Insert(&a, 1, {int64_t(100), int64_t(1)}).ok());
  txns->Begin(&c);
  ASSERT_TRUE(txns->Insert(&c, 1, {int64_t(300), int64_t(3)}).ok());
  // ...while B commits behind them in the log.
  Transaction b;
  txns->Begin(&b);
  ASSERT_TRUE(txns->Insert(&b, 1, {int64_t(200), int64_t(2)}).ok());
  ASSERT_TRUE(txns->Commit(&b).ok());

  RoNode* leader = cluster.leader();
  leader->StopReplication();
  ASSERT_TRUE(leader->CatchUpNow().ok());
  // Checkpoint now: csn covers B; A and C travel as in-flight buffers.
  ASSERT_TRUE(leader->pipeline()->TakeCheckpoint(1).ok());
  // After the checkpoint, A commits and C aborts.
  ASSERT_TRUE(txns->Commit(&a).ok());
  ASSERT_TRUE(txns->Rollback(&c).ok());

  RoNode* fresh = nullptr;
  ASSERT_TRUE(cluster.AddRoNode(&fresh).ok());
  ASSERT_TRUE(fresh->CatchUpNow().ok());
  auto plan =
      LAgg(LScan(1, {0}), {}, {AggSpec{AggKind::kCountStar, nullptr}});
  std::vector<Row> out;
  ASSERT_TRUE(fresh->ExecuteColumn(plan, &out).ok());
  // 10 bulk + A + B: B applied exactly once, A's restored buffer applied on
  // its commit, C's restored buffer discarded on its abort.
  EXPECT_EQ(AsInt(out[0][0]), 12);
  Row r;
  EXPECT_TRUE(fresh->imci()->GetIndex(1)
                  ->LookupByPk(100, fresh->applied_vid(), &r).ok());
  EXPECT_TRUE(fresh->imci()->GetIndex(1)
                  ->LookupByPk(300, fresh->applied_vid(), &r).IsNotFound());
}

TEST_F(ClusterTest, VisibilityDelayIsMeasured) {
  auto* txns = cluster_->rw()->txn_manager();
  for (int i = 0; i < 50; ++i) {
    Transaction txn;
    txns->Begin(&txn);
    ASSERT_TRUE(txns->Insert(&txn, 1, {int64_t(20000 + i), int64_t(i)}).ok());
    ASSERT_TRUE(txns->Commit(&txn).ok());
  }
  RoNode* ro = cluster_->ro(0);
  ASSERT_TRUE(ro->CatchUpNow().ok());
  EXPECT_GT(ro->pipeline()->vd_histogram()->Count(), 0u);
  // Visibility delay at this scale should be well under a second.
  EXPECT_LT(ro->pipeline()->vd_histogram()->Percentile(0.99), 1'000'000u);
}

}  // namespace
}  // namespace imci
