#include <gtest/gtest.h>

#include <thread>

#include "common/rng.h"
#include "rowstore/engine.h"

namespace imci {
namespace {

std::shared_ptr<const Schema> TestSchema(TableId id = 1) {
  std::vector<ColumnDef> cols;
  cols.push_back({"id", DataType::kInt64, false, true});
  cols.push_back({"k", DataType::kInt64, false, true});
  cols.push_back({"payload", DataType::kString, true, true});
  return std::make_shared<Schema>(id, "t" + std::to_string(id), cols, 0,
                                  std::vector<int>{1});
}

class RowStoreTest : public ::testing::Test {
 protected:
  RowStoreTest() : engine_(&fs_, &catalog_) {
    EXPECT_TRUE(engine_.CreateTable(TestSchema()).ok());
    table_ = engine_.GetTable(1);
  }
  PolarFs fs_;
  Catalog catalog_;
  RowStoreEngine engine_;
  RowTable* table_;
};

TEST_F(RowStoreTest, InsertLookupDelete) {
  std::vector<RedoRecord> redo;
  ASSERT_TRUE(table_->Insert({int64_t(1), int64_t(5), std::string("a")},
                             &redo).ok());
  EXPECT_EQ(redo.size(), 1u);
  EXPECT_EQ(redo[0].type, RedoType::kInsert);
  Row row;
  ASSERT_TRUE(table_->Get(1, &row).ok());
  EXPECT_EQ(AsInt(row[1]), 5);
  redo.clear();
  Row old_row;
  ASSERT_TRUE(table_->Delete(1, &old_row, &redo).ok());
  EXPECT_EQ(redo[0].type, RedoType::kDelete);
  EXPECT_TRUE(table_->Get(1, &row).IsNotFound());
}

TEST_F(RowStoreTest, DuplicateInsertRejected) {
  std::vector<RedoRecord> redo;
  ASSERT_TRUE(table_->Insert({int64_t(1), int64_t(0), Value{}}, &redo).ok());
  EXPECT_FALSE(table_->Insert({int64_t(1), int64_t(0), Value{}}, &redo).ok());
}

TEST_F(RowStoreTest, UpdateEmitsDiffRecord) {
  std::vector<RedoRecord> redo;
  ASSERT_TRUE(table_->Insert({int64_t(9), int64_t(1), std::string("aaaa")},
                             &redo).ok());
  redo.clear();
  Row old_row;
  ASSERT_TRUE(table_->Update(9, {int64_t(9), int64_t(2), std::string("bbbb")},
                             &old_row, &redo).ok());
  ASSERT_EQ(redo.size(), 1u);
  EXPECT_EQ(redo[0].type, RedoType::kUpdate);
  EXPECT_EQ(AsInt(old_row[1]), 1);
  Row row;
  ASSERT_TRUE(table_->Get(9, &row).ok());
  EXPECT_EQ(AsInt(row[1]), 2);
}

TEST_F(RowStoreTest, SplitsProduceSmoRecordsAndKeepScansOrdered) {
  Rng rng(5);
  std::vector<RedoRecord> all_redo;
  for (int64_t i = 0; i < 3000; ++i) {
    std::vector<RedoRecord> redo;
    int64_t key = (i * 2654435761) % 100000;  // pseudo-random order
    Status s = table_->Insert({key, i, rng.RandomString(40, 80)}, &redo);
    if (!s.ok()) continue;  // duplicate pseudo-random key
    for (auto& r : redo) all_redo.push_back(std::move(r));
  }
  bool saw_smo = false;
  for (const auto& r : all_redo) {
    if (r.type == RedoType::kSmo) {
      saw_smo = true;
      EXPECT_EQ(r.tid, 0u);
      EXPECT_GE(r.page_images.size(), 2u);
    }
  }
  EXPECT_TRUE(saw_smo);
  // Scan returns keys in ascending order across leaf chain.
  int64_t prev = -1;
  uint64_t count = 0;
  (void)table_->Scan([&](int64_t pk, const Row&) {
    EXPECT_GT(pk, prev);
    prev = pk;
    ++count;
    return true;
  });
  EXPECT_EQ(count, table_->row_count());
  EXPECT_GT(count, 2000u);
}

TEST_F(RowStoreTest, RangeScan) {
  std::vector<RedoRecord> redo;
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(table_->Insert({i, i, Value{}}, &redo).ok());
  }
  std::vector<int64_t> got;
  (void)table_->ScanRange(10, 19, [&](int64_t pk, const Row&) {
    got.push_back(pk);
    return true;
  });
  ASSERT_EQ(got.size(), 10u);
  EXPECT_EQ(got.front(), 10);
  EXPECT_EQ(got.back(), 19);
}

TEST_F(RowStoreTest, SecondaryIndexMaintainedAcrossDml) {
  std::vector<RedoRecord> redo;
  ASSERT_TRUE(table_->Insert({int64_t(1), int64_t(100), Value{}}, &redo).ok());
  ASSERT_TRUE(table_->Insert({int64_t(2), int64_t(100), Value{}}, &redo).ok());
  ASSERT_TRUE(table_->Insert({int64_t(3), int64_t(200), Value{}}, &redo).ok());
  std::vector<int64_t> pks;
  ASSERT_TRUE(table_->IndexLookup(1, 100, &pks).ok());
  EXPECT_EQ(pks.size(), 2u);
  Row old_row;
  ASSERT_TRUE(table_->Update(2, {int64_t(2), int64_t(200), Value{}}, &old_row,
                             &redo).ok());
  pks.clear();
  ASSERT_TRUE(table_->IndexLookup(1, 200, &pks).ok());
  EXPECT_EQ(pks.size(), 2u);
  ASSERT_TRUE(table_->Delete(3, &old_row, &redo).ok());
  pks.clear();
  ASSERT_TRUE(table_->IndexLookupRange(1, 0, 1000, &pks).ok());
  EXPECT_EQ(pks.size(), 2u);
}

TEST_F(RowStoreTest, BulkLoadThenPointReads) {
  std::vector<Row> rows;
  for (int64_t i = 0; i < 5000; ++i) {
    rows.push_back({i, i % 17, std::string("v") + std::to_string(i)});
  }
  ASSERT_TRUE(table_->BulkLoad(rows).ok());
  EXPECT_EQ(table_->row_count(), 5000u);
  Row row;
  ASSERT_TRUE(table_->Get(4321, &row).ok());
  EXPECT_EQ(AsString(row[2]), "v4321");
}

TEST(BufferPoolTest, EvictsCleanColdPages) {
  PolarFs fs;
  BufferPool pool(&fs, 4);
  for (PageId id = 1; id <= 8; ++id) {
    pool.NewPage(id, 1, PageType::kLeaf);
    ASSERT_TRUE(pool.FlushPage(id).ok());  // clean it so it can be evicted
  }
  EXPECT_LE(pool.resident_pages(), 4u);
  // Evicted pages are reloaded from shared storage on demand.
  PageRef page;
  ASSERT_TRUE(pool.GetPage(1, &page).ok());
  EXPECT_EQ(page->id, 1u);
  EXPECT_GT(pool.misses(), 0u);
}

TEST(LockManagerTest, ExclusiveAndReentrant) {
  LockManager locks(5'000);
  ASSERT_TRUE(locks.Lock(1, 1, 42).ok());
  ASSERT_TRUE(locks.Lock(1, 1, 42).ok());  // re-entrant
  EXPECT_TRUE(locks.Lock(2, 1, 42).IsBusy());  // times out
  locks.Unlock(1, 1, 42);
  EXPECT_TRUE(locks.Lock(2, 1, 42).ok());
}

class TxnTest : public ::testing::Test {
 protected:
  TxnTest()
      : engine_(&fs_, &catalog_),
        writer_(fs_.log("redo")),
        binlog_(fs_.log("binlog")),
        txns_(&engine_, &writer_, &locks_, &binlog_) {
    EXPECT_TRUE(engine_.CreateTable(TestSchema()).ok());
  }
  PolarFs fs_;
  Catalog catalog_;
  RowStoreEngine engine_;
  RedoWriter writer_;
  LockManager locks_;
  BinlogWriter binlog_;
  TransactionManager txns_;
};

TEST_F(TxnTest, CommitAssignsIncreasingVids) {
  Transaction t1, t2;
  txns_.Begin(&t1);
  ASSERT_TRUE(txns_.Insert(&t1, 1, {int64_t(1), int64_t(1), Value{}}).ok());
  ASSERT_TRUE(txns_.Commit(&t1).ok());
  txns_.Begin(&t2);
  ASSERT_TRUE(txns_.Insert(&t2, 1, {int64_t(2), int64_t(2), Value{}}).ok());
  ASSERT_TRUE(txns_.Commit(&t2).ok());
  EXPECT_LT(t1.commit_vid(), t2.commit_vid());
  EXPECT_EQ(txns_.commits(), 2u);
}

TEST_F(TxnTest, RollbackUndoesAllOps) {
  Transaction setup;
  txns_.Begin(&setup);
  ASSERT_TRUE(txns_.Insert(&setup, 1, {int64_t(1), int64_t(10),
                                       std::string("orig")}).ok());
  ASSERT_TRUE(txns_.Commit(&setup).ok());

  Transaction txn;
  txns_.Begin(&txn);
  ASSERT_TRUE(txns_.Insert(&txn, 1, {int64_t(2), int64_t(2), Value{}}).ok());
  ASSERT_TRUE(txns_.Update(&txn, 1, 1, {int64_t(1), int64_t(99),
                                        std::string("mod")}).ok());
  ASSERT_TRUE(txns_.Delete(&txn, 1, 1).ok());
  ASSERT_TRUE(txns_.Rollback(&txn).ok());

  Row row;
  ASSERT_TRUE(txns_.Get(1, 1, &row).ok());
  EXPECT_EQ(AsInt(row[1]), 10);
  EXPECT_EQ(AsString(row[2]), "orig");
  EXPECT_TRUE(txns_.Get(1, 2, &row).IsNotFound());
}

TEST_F(TxnTest, LockConflictReportsBusy) {
  Transaction t1, t2;
  txns_.Begin(&t1);
  ASSERT_TRUE(txns_.Insert(&t1, 1, {int64_t(5), int64_t(0), Value{}}).ok());
  txns_.Begin(&t2);
  Row row;
  EXPECT_TRUE(txns_.GetForUpdate(&t2, 1, 5, &row).IsBusy());
  ASSERT_TRUE(txns_.Commit(&t1).ok());
  EXPECT_TRUE(txns_.GetForUpdate(&t2, 1, 5, &row).ok());
  ASSERT_TRUE(txns_.Commit(&t2).ok());
}

TEST_F(TxnTest, BinlogModeWritesLogicalLogAndExtraFsync) {
  txns_.set_binlog_enabled(true);
  const uint64_t fsyncs_before = fs_.fsync_count();
  Transaction txn;
  txns_.Begin(&txn);
  ASSERT_TRUE(txns_.Insert(&txn, 1, {int64_t(9), int64_t(9), Value{}}).ok());
  ASSERT_TRUE(txns_.Commit(&txn).ok());
  // One commit fsync + one binlog fsync: the Fig. 11 overhead.
  EXPECT_EQ(fs_.fsync_count() - fsyncs_before, 2u);
  EXPECT_EQ(binlog_.txns_written(), 1u);
  EXPECT_GT(binlog_.bytes_written(), 0u);
}

TEST_F(TxnTest, ConcurrentDisjointCommits) {
  std::vector<std::thread> threads;
  std::atomic<int> ok_count{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 50; ++i) {
        Transaction txn;
        txns_.Begin(&txn);
        int64_t pk = t * 1000 + i;
        if (txns_.Insert(&txn, 1, {pk, pk, Value{}}).ok() &&
            txns_.Commit(&txn).ok()) {
          ok_count.fetch_add(1);
        } else {
          (void)txns_.Rollback(&txn);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok_count.load(), 400);
  EXPECT_EQ(engine_.GetTable(1)->row_count(), 400u);
}

TEST(PageSerializationTest, AllPageTypesRoundTrip) {
  Page leaf;
  leaf.id = 5;
  leaf.table_id = 2;
  leaf.type = PageType::kLeaf;
  leaf.next_leaf = 6;
  leaf.keys = {1, 2, 3};
  leaf.payloads = {"a", "bb", "ccc"};
  leaf.page_lsn = 17;
  std::string buf;
  leaf.Serialize(&buf);
  Page out;
  ASSERT_TRUE(Page::Deserialize(buf.data(), buf.size(), &out).ok());
  EXPECT_EQ(out.keys, leaf.keys);
  EXPECT_EQ(out.payloads, leaf.payloads);
  EXPECT_EQ(out.next_leaf, 6u);
  EXPECT_EQ(out.page_lsn, 17u);

  Page internal;
  internal.id = 9;
  internal.type = PageType::kInternal;
  internal.keys = {10, 20};
  internal.children = {100, 101, 102};
  buf.clear();
  internal.Serialize(&buf);
  ASSERT_TRUE(Page::Deserialize(buf.data(), buf.size(), &out).ok());
  EXPECT_EQ(out.children, internal.children);

  Page meta;
  meta.id = 1;
  meta.type = PageType::kMeta;
  meta.root_page = 9;
  meta.first_leaf = 5;
  buf.clear();
  meta.Serialize(&buf);
  ASSERT_TRUE(Page::Deserialize(buf.data(), buf.size(), &out).ok());
  EXPECT_EQ(out.root_page, 9u);
  EXPECT_EQ(out.first_leaf, 5u);
}

}  // namespace
}  // namespace imci
