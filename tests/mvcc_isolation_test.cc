// MVCC snapshot reads on the RW node: the anomaly matrix (dirty read,
// non-repeatable read, read skew across two tables — each shown to
// *reproduce* on the legacy pre-MVCC read path and to be impossible under
// snapshot reads), write skew documented as allowed, multi-row transaction
// atomicity under a concurrent write-heavy mix (the tsan stress), version
// chain pruning pinned by long-lived snapshots across TriggerCheckpoint, and
// the reader/writer latch regression: a slow scan no longer blocks writers.
//
// The RoMvccTest arm covers the RO side of the same substrate: Phase#1
// physical replay installs replica page changes as *in-flight* versions
// keyed by the owning transaction, Phase#2 stamps them at the commit
// decision, and RO row-engine scans run at a pinned applied-VID snapshot —
// so a scan during a straddling multi-row apply sees all-or-nothing even
// though the raw replica pages are torn mid-apply.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "tests/test_util.h"

namespace imci {
namespace {

using ReadMode = TransactionManager::ReadMode;

std::shared_ptr<const Schema> KvSchema(TableId id, const std::string& name) {
  std::vector<ColumnDef> cols;
  cols.push_back({"id", DataType::kInt64, false, true});
  cols.push_back({"v", DataType::kInt64, false, true});
  return std::make_shared<Schema>(id, name, cols, 0);
}

std::vector<Row> KvRows(int64_t n, int64_t v) {
  std::vector<Row> rows;
  for (int64_t pk = 0; pk < n; ++pk) rows.push_back({pk, v});
  return rows;
}

/// One committed single-row update (retried on lock timeouts).
Status UpdateOne(TransactionManager* txns, TableId table, int64_t pk,
                 int64_t v) {
  for (;;) {
    Transaction txn;
    txns->Begin(&txn);
    Row row;
    Status s = txns->GetForUpdate(&txn, table, pk, &row);
    if (s.ok()) {
      row[1] = v;
      s = txns->Update(&txn, table, pk, row);
    }
    if (!s.ok()) {
      (void)txns->Rollback(&txn);
      if (s.IsBusy()) continue;
      return s;
    }
    return txns->Commit(&txn);
  }
}

class MvccIsolationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rw_ = std::make_unique<RwNode>(&fs_, &catalog_);
    ASSERT_TRUE(rw_->CreateTable(KvSchema(1, "a")).ok());
    ASSERT_TRUE(rw_->CreateTable(KvSchema(2, "b")).ok());
    ASSERT_TRUE(rw_->BulkLoad(1, KvRows(10, 100)).ok());
    ASSERT_TRUE(rw_->BulkLoad(2, KvRows(10, 100)).ok());
    txns_ = rw_->txn_manager();
  }

  int64_t ReadV(TableId table, int64_t pk) {
    Row row;
    Status s = txns_->Get(table, pk, &row);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return s.ok() ? AsInt(row[1]) : -1;
  }

  PolarFs fs_;
  Catalog catalog_;
  std::unique_ptr<RwNode> rw_;
  TransactionManager* txns_ = nullptr;
};

TEST_F(MvccIsolationTest, DirtyReadImpossibleButReproducesOnLegacyPath) {
  Transaction t1;
  txns_->Begin(&t1);
  Row row;
  ASSERT_TRUE(txns_->GetForUpdate(&t1, 1, 0, &row).ok());
  row[1] = int64_t(999);
  ASSERT_TRUE(txns_->Update(&t1, 1, 0, row).ok());

  // Snapshot read: the uncommitted write is invisible.
  EXPECT_EQ(ReadV(1, 0), 100);

  // Legacy (pre-MVCC) read-committed path reads the raw B+tree image and
  // sees the uncommitted write — the dirty-read anomaly this layer removes.
  txns_->set_read_mode(ReadMode::kReadCommitted);
  EXPECT_EQ(ReadV(1, 0), 999);
  txns_->set_read_mode(ReadMode::kSnapshot);

  ASSERT_TRUE(txns_->Rollback(&t1).ok());
  EXPECT_EQ(ReadV(1, 0), 100);
  // Rollback removed the in-flight version; at most the seeded base stays.
  EXPECT_LE(rw_->engine()->GetTable(1)->VersionChainLength(0), 1u);
}

TEST_F(MvccIsolationTest, NonRepeatableReadImpossibleUnderOneView) {
  ReadView view = txns_->OpenReadView();
  Row row;
  ASSERT_TRUE(txns_->Get(view, 1, 3, &row).ok());
  EXPECT_EQ(AsInt(row[1]), 100);

  ASSERT_TRUE(UpdateOne(txns_, 1, 3, 777).ok());

  // The same view repeats the original value; a fresh snapshot sees the
  // commit.
  ASSERT_TRUE(txns_->Get(view, 1, 3, &row).ok());
  EXPECT_EQ(AsInt(row[1]), 100);
  EXPECT_EQ(ReadV(1, 3), 777);
  view.Close();

  // Legacy arm: a "view" opened in read-committed mode is unregistered and
  // reads latest state, so the same interleave produces two different
  // values — the non-repeatable-read anomaly.
  txns_->set_read_mode(ReadMode::kReadCommitted);
  ReadView legacy = txns_->OpenReadView();
  EXPECT_FALSE(legacy.IsSnapshot());
  ASSERT_TRUE(txns_->Get(legacy, 1, 3, &row).ok());
  const int64_t first = AsInt(row[1]);
  ASSERT_TRUE(UpdateOne(txns_, 1, 3, 778).ok());
  ASSERT_TRUE(txns_->Get(legacy, 1, 3, &row).ok());
  EXPECT_NE(AsInt(row[1]), first);  // anomaly reproduced
  txns_->set_read_mode(ReadMode::kSnapshot);
}

TEST_F(MvccIsolationTest, ReadSkewAcrossTwoTablesImpossibleUnderSnapshot) {
  // Invariant maintained by every writer: a[5].v + b[5].v == 200.
  auto transfer = [&] {
    Transaction txn;
    txns_->Begin(&txn);
    Row a, b;
    ASSERT_TRUE(txns_->GetForUpdate(&txn, 1, 5, &a).ok());
    ASSERT_TRUE(txns_->GetForUpdate(&txn, 2, 5, &b).ok());
    a[1] = AsInt(a[1]) - 50;
    b[1] = AsInt(b[1]) + 50;
    ASSERT_TRUE(txns_->Update(&txn, 1, 5, a).ok());
    ASSERT_TRUE(txns_->Update(&txn, 2, 5, b).ok());
    ASSERT_TRUE(txns_->Commit(&txn).ok());
  };

  // Legacy: read A, let a transfer commit, read B — the sum is torn (the
  // read-skew anomaly, deterministic with this handshake).
  txns_->set_read_mode(ReadMode::kReadCommitted);
  Row a, b;
  ASSERT_TRUE(txns_->Get(1, 5, &a).ok());
  transfer();
  ASSERT_TRUE(txns_->Get(2, 5, &b).ok());
  EXPECT_EQ(AsInt(a[1]) + AsInt(b[1]), 250);  // != 200: anomaly reproduced

  // Snapshot: the same interleave under one view preserves the invariant.
  txns_->set_read_mode(ReadMode::kSnapshot);
  ReadView view = txns_->OpenReadView();
  ASSERT_TRUE(txns_->Get(view, 1, 5, &a).ok());
  transfer();
  ASSERT_TRUE(txns_->Get(view, 2, 5, &b).ok());
  EXPECT_EQ(AsInt(a[1]) + AsInt(b[1]), 200);

  // A fresh view sees the post-transfer state, still consistent.
  ReadView after = txns_->OpenReadView();
  ASSERT_TRUE(txns_->Get(after, 1, 5, &a).ok());
  ASSERT_TRUE(txns_->Get(after, 2, 5, &b).ok());
  EXPECT_EQ(AsInt(a[1]) + AsInt(b[1]), 200);
}

TEST_F(MvccIsolationTest, WriteSkewIsAllowedUnderSnapshotIsolation) {
  // Snapshot isolation (not serializability): two transactions each read
  // the *other* row through their snapshot, see the old state, and write
  // their own row — both commit, and the cross-row constraint "a + b > 0"
  // the reads were meant to guard is violated. Documented as allowed; the
  // serializable upgrade path (SSI-style write-read tracking) is a ROADMAP
  // follow-up.
  Transaction t1, t2;
  txns_->Begin(&t1);
  txns_->Begin(&t2);
  ReadView v1 = txns_->OpenReadView();
  ReadView v2 = txns_->OpenReadView();
  Row other, mine;

  ASSERT_TRUE(txns_->Get(v1, 2, 7, &other).ok());  // t1 checks b[7]
  EXPECT_EQ(AsInt(other[1]), 100);                 // "b still has funds"
  ASSERT_TRUE(txns_->GetForUpdate(&t1, 1, 7, &mine).ok());
  mine[1] = int64_t(0);
  ASSERT_TRUE(txns_->Update(&t1, 1, 7, mine).ok());

  ASSERT_TRUE(txns_->Get(v2, 1, 7, &other).ok());  // t2 checks a[7]
  EXPECT_EQ(AsInt(other[1]), 100);  // snapshot: t1's write invisible
  ASSERT_TRUE(txns_->GetForUpdate(&t2, 2, 7, &mine).ok());
  mine[1] = int64_t(0);
  ASSERT_TRUE(txns_->Update(&t2, 2, 7, mine).ok());

  ASSERT_TRUE(txns_->Commit(&t1).ok());
  ASSERT_TRUE(txns_->Commit(&t2).ok());
  EXPECT_EQ(ReadV(1, 7) + ReadV(2, 7), 0);  // skew happened (allowed)
}

TEST_F(MvccIsolationTest, SnapshotScanMergesDeletedRowsAndHidesLaterWrites) {
  ReadView view = txns_->OpenReadView();

  // After the view opens: delete pk 2, insert pk 100 — one transaction.
  Transaction txn;
  txns_->Begin(&txn);
  ASSERT_TRUE(txns_->Delete(&txn, 1, 2).ok());
  ASSERT_TRUE(txns_->Insert(&txn, 1, {int64_t(100), int64_t(1)}).ok());
  ASSERT_TRUE(txns_->Commit(&txn).ok());

  // The old view still sees pk 2 (served from its version chain — the tree
  // no longer holds the key) and not pk 100.
  std::vector<int64_t> pks;
  ASSERT_TRUE(txns_->Scan(view, 1, [&](int64_t pk, const Row&) {
    pks.push_back(pk);
    return true;
  }).ok());
  EXPECT_EQ(pks, (std::vector<int64_t>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
  Row row;
  EXPECT_TRUE(txns_->Get(view, 1, 2, &row).ok());
  EXPECT_TRUE(txns_->Get(view, 1, 100, &row).IsNotFound());

  // A fresh view sees the delete and the insert.
  ReadView now = txns_->OpenReadView();
  pks.clear();
  ASSERT_TRUE(txns_->Scan(now, 1, [&](int64_t pk, const Row&) {
    pks.push_back(pk);
    return true;
  }).ok());
  EXPECT_EQ(pks, (std::vector<int64_t>{0, 1, 3, 4, 5, 6, 7, 8, 9, 100}));
  EXPECT_TRUE(txns_->Get(now, 1, 2, &row).IsNotFound());
  EXPECT_TRUE(txns_->Get(now, 1, 100, &row).ok());
}

TEST_F(MvccIsolationTest, MultiRowTxnAtomicityUnderWriteHeavyStress) {
  // 8 threads (4 writers + 4 scanners — the tsan stress): writers set all 4
  // rows of a group to one fresh token per transaction; scanners assert a
  // snapshot never shows a torn group (all-or-none of each multi-row txn).
  constexpr int kGroups = 8;
  constexpr int kWriters = 4;
  constexpr int kScanners = 4;
  ASSERT_TRUE(rw_->CreateTable(KvSchema(3, "g")).ok());
  ASSERT_TRUE(rw_->BulkLoad(3, KvRows(4 * kGroups, 0)).ok());

  const uint64_t seed = testing_util::TestSeed(42);
  const int txns_per_writer = testing_util::TestIters(200);
  SCOPED_TRACE(::testing::Message() << "IMCI_TEST_SEED=" << seed
                                    << " IMCI_TEST_ITERS=" << txns_per_writer
                                    << " reproduces this run");
  std::atomic<int> writers_left{kWriters};
  std::atomic<int64_t> next_token{1};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      Rng rng(seed + w);
      for (int i = 0; i < txns_per_writer; ++i) {
        const int64_t g = static_cast<int64_t>(rng.Next() % kGroups);
        const int64_t token = next_token.fetch_add(1);
        Transaction txn;
        txns_->Begin(&txn);
        bool ok = true;
        for (int64_t r = 0; r < 4 && ok; ++r) {
          Row row;
          ok = txns_->GetForUpdate(&txn, 3, g * 4 + r, &row).ok();
          if (ok) {
            row[1] = token;
            ok = txns_->Update(&txn, 3, g * 4 + r, row).ok();
          }
        }
        if (ok) {
          EXPECT_TRUE(txns_->Commit(&txn).ok());
        } else {
          (void)txns_->Rollback(&txn);  // lock timeout: abort and move on
        }
      }
      writers_left.fetch_sub(1);
    });
  }
  for (int s = 0; s < kScanners; ++s) {
    threads.emplace_back([&] {
      while (writers_left.load() > 0) {
        ReadView view = txns_->OpenReadView();
        std::vector<int64_t> vals(4 * kGroups, -1);
        Status st = txns_->Scan(view, 3, [&](int64_t pk, const Row& row) {
          vals[pk] = AsInt(row[1]);
          return true;
        });
        EXPECT_TRUE(st.ok()) << st.ToString();
        for (int g = 0; g < kGroups; ++g) {
          for (int r = 1; r < 4; ++r) {
            EXPECT_EQ(vals[g * 4], vals[g * 4 + r])
                << "torn multi-row transaction visible in group " << g;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
}

TEST(MvccPruningTest, LongLivedSnapshotPinsVersionsAcrossCheckpoint) {
  ClusterOptions opts;
  Cluster cluster(opts);
  ASSERT_TRUE(cluster.CreateTable(KvSchema(1, "a")).ok());
  ASSERT_TRUE(cluster.BulkLoad(1, KvRows(10, 100)).ok());
  ASSERT_TRUE(cluster.Open().ok());
  auto* txns = cluster.rw()->txn_manager();
  RowTable* table = cluster.rw()->engine()->GetTable(1);

  // Pin a snapshot of the bulk state, then build up history on every row.
  ReadView pin = txns->OpenReadView();
  for (int round = 1; round <= 3; ++round) {
    for (int64_t pk = 0; pk < 10; ++pk) {
      ASSERT_TRUE(UpdateOne(txns, 1, pk, 1000 * round + pk).ok());
    }
  }
  EXPECT_EQ(table->versioned_row_count(), 10u);
  EXPECT_GE(table->MaxVersionChainLength(), 2u);

  // Checkpoint with the snapshot live: pruning must stop at the snapshot —
  // it still resolves the original values afterwards.
  ASSERT_TRUE(cluster.TriggerCheckpoint().ok());
  EXPECT_EQ(table->versioned_row_count(), 10u);
  Row row;
  ASSERT_TRUE(txns->Get(pin, 1, 0, &row).ok());
  EXPECT_EQ(AsInt(row[1]), 100);

  // Close the snapshot: the next checkpoint reclaims every pinned version —
  // chains return to length <= 1, i.e. every row serves from the tree alone.
  pin.Close();
  ASSERT_TRUE(cluster.TriggerCheckpoint().ok());
  EXPECT_EQ(table->versioned_row_count(), 0u);
  EXPECT_EQ(table->MaxVersionChainLength(), 0u);
  ASSERT_TRUE(txns->Get(1, 0, &row).ok());
  EXPECT_EQ(AsInt(row[1]), 3000);
}

TEST(RoMvccTest, RowEngineScanSeesAllOrNothingDuringStraddlingApply) {
  // Step the RO apply one redo record at a time (chunk_records = 1) across
  // a 4-row transaction: the raw replica pages become torn after the first
  // stepped record, but the row engine — reading at the pinned applied-VID
  // snapshot through the replica's version chains — must show all-or-none
  // of the transaction at every step. Reverting Phase#1 stamping to
  // apply-time visibility (or row reads to latest-applied) fails this test
  // at the intermediate steps.
  PolarFs fs;
  Catalog catalog;
  RwNode rw(&fs, &catalog);
  ASSERT_TRUE(rw.CreateTable(KvSchema(1, "a")).ok());
  ASSERT_TRUE(rw.BulkLoad(1, KvRows(4, 100)).ok());
  ASSERT_TRUE(rw.FinishLoad().ok());

  RoNodeOptions opts;
  opts.replication.chunk_records = 1;
  RoNode node("ro-step", &fs, &catalog, opts);
  ASSERT_TRUE(node.Boot().ok());
  ASSERT_TRUE(node.CatchUpNow().ok());  // seeds the pipeline cursor

  auto* txns = rw.txn_manager();
  Transaction txn;
  txns->Begin(&txn);
  for (int64_t pk = 0; pk < 4; ++pk) {
    Row row;
    ASSERT_TRUE(txns->GetForUpdate(&txn, 1, pk, &row).ok());
    row[1] = int64_t(777);
    ASSERT_TRUE(txns->Update(&txn, 1, pk, row).ok());
  }
  ASSERT_TRUE(txns->Commit(&txn).ok());

  auto scan_vals = [&] {
    std::vector<Row> out;
    EXPECT_TRUE(node.ExecuteRow(LScan(1, {0, 1}), &out).ok());
    std::vector<int64_t> vals;
    for (const Row& r : out) vals.push_back(AsInt(r[1]));
    return vals;
  };
  const std::vector<int64_t> all_old(4, 100);
  const std::vector<int64_t> all_new(4, 777);
  const Lsn tail = fs.log("redo")->written_lsn();  // 4 DML records + commit
  int steps = 0;
  bool saw_torn_pages = false;
  while (node.pipeline()->read_lsn() < tail) {
    ASSERT_TRUE(node.pipeline()->PollOnce().ok());
    ++steps;
    const std::vector<int64_t> vals = scan_vals();
    const bool committed = node.applied_vid() == txn.commit_vid();
    EXPECT_EQ(vals, committed ? all_new : all_old)
        << "torn multi-row apply visible to the row engine at step " << steps;
    if (!committed && node.pipeline()->parser()->records_applied() > 0) {
      // The raw replica state IS torn mid-apply — the chains, not luck,
      // provide the isolation above.
      Row raw;
      ASSERT_TRUE(node.engine()->GetTable(1)->Get(0, &raw).ok());
      if (AsInt(raw[1]) == 777) saw_torn_pages = true;
      EXPECT_GT(node.engine()->GetTable(1)->versioned_row_count(), 0u);
    }
  }
  EXPECT_GE(steps, 5);  // the apply really straddled poll boundaries
  EXPECT_TRUE(saw_torn_pages);
  EXPECT_EQ(node.applied_vid(), txn.commit_vid());
  EXPECT_EQ(scan_vals(), all_new);
}

TEST(RoMvccTest, RowEngineStressSeesNoTornTransactionsDuringReplication) {
  // The concurrent arm: RW writers commit 4-row group transactions while
  // the background pipeline replicates and RO row-engine scans (each at its
  // own pinned applied-VID snapshot) assert every group is uniform — the
  // RO-side counterpart of MultiRowTxnAtomicityUnderWriteHeavyStress.
  constexpr int kGroups = 8;
  constexpr int kWriters = 2;
  constexpr int kScanners = 2;
  ClusterOptions copts;
  Cluster cluster(copts);
  ASSERT_TRUE(cluster.CreateTable(KvSchema(1, "g")).ok());
  ASSERT_TRUE(cluster.BulkLoad(1, KvRows(4 * kGroups, 0)).ok());
  ASSERT_TRUE(cluster.Open().ok());
  auto* txns = cluster.rw()->txn_manager();
  RoNode* ro = cluster.ro(0);
  ASSERT_NE(ro, nullptr);

  const uint64_t seed = testing_util::TestSeed(77);
  const int txns_per_writer = testing_util::TestIters(150);
  SCOPED_TRACE(::testing::Message() << "IMCI_TEST_SEED=" << seed
                                    << " IMCI_TEST_ITERS=" << txns_per_writer
                                    << " reproduces this run");
  std::atomic<int> writers_left{kWriters};
  std::atomic<int64_t> next_token{1};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      Rng rng(seed + w);
      for (int i = 0; i < txns_per_writer; ++i) {
        const int64_t g = static_cast<int64_t>(rng.Next() % kGroups);
        const int64_t token = next_token.fetch_add(1);
        Transaction txn;
        txns->Begin(&txn);
        bool ok = true;
        for (int64_t r = 0; r < 4 && ok; ++r) {
          Row row;
          ok = txns->GetForUpdate(&txn, 1, g * 4 + r, &row).ok();
          if (ok) {
            row[1] = token;
            ok = txns->Update(&txn, 1, g * 4 + r, row).ok();
          }
        }
        if (ok) {
          EXPECT_TRUE(txns->Commit(&txn).ok());
        } else {
          (void)txns->Rollback(&txn);  // lock timeout: abort and move on
        }
      }
      writers_left.fetch_sub(1);
    });
  }
  for (int s = 0; s < kScanners; ++s) {
    threads.emplace_back([&] {
      while (writers_left.load() > 0) {
        std::vector<Row> out;
        Status st = ro->ExecuteRow(LScan(1, {0, 1}), &out);
        EXPECT_TRUE(st.ok()) << st.ToString();
        ASSERT_EQ(out.size(), static_cast<size_t>(4 * kGroups));
        std::vector<int64_t> vals(4 * kGroups, -1);
        for (const Row& row : out) vals[AsInt(row[0])] = AsInt(row[1]);
        for (int g = 0; g < kGroups; ++g) {
          for (int r = 1; r < 4; ++r) {
            EXPECT_EQ(vals[g * 4], vals[g * 4 + r])
                << "torn replicated transaction visible in group " << g;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_TRUE(ro->CatchUpNow().ok());
}

TEST(RoMvccTest, ReplicaChainsStampedThenPrunedByMaintenance) {
  // Replica version chains must not leak: once transactions are stamped and
  // no row-engine snapshot pins them, the pipeline's maintenance pass
  // (SnapshotRegistry watermark == applied VID) erases caught-up chains.
  PolarFs fs;
  Catalog catalog;
  RwNode rw(&fs, &catalog);
  ASSERT_TRUE(rw.CreateTable(KvSchema(1, "a")).ok());
  ASSERT_TRUE(rw.BulkLoad(1, KvRows(10, 100)).ok());
  ASSERT_TRUE(rw.FinishLoad().ok());

  RoNodeOptions opts;
  opts.replication.maintenance_interval = 1;  // maintenance on every poll
  RoNode node("ro-prune", &fs, &catalog, opts);
  ASSERT_TRUE(node.Boot().ok());
  ASSERT_TRUE(node.CatchUpNow().ok());

  auto* txns = rw.txn_manager();
  for (int round = 1; round <= 3; ++round) {
    for (int64_t pk = 0; pk < 10; ++pk) {
      ASSERT_TRUE(UpdateOne(txns, 1, pk, 1000 * round + pk).ok());
    }
  }
  const Lsn tail = fs.log("redo")->written_lsn();
  while (node.pipeline()->read_lsn() < tail) {
    ASSERT_TRUE(node.pipeline()->PollOnce().ok());
  }
  ASSERT_TRUE(node.pipeline()->PollOnce().ok());  // one more: maintenance
  RowTable* replica = node.engine()->GetTable(1);
  EXPECT_EQ(replica->versioned_row_count(), 0u);
  EXPECT_EQ(replica->MaxVersionChainLength(), 0u);
  std::vector<Row> out;
  ASSERT_TRUE(node.ExecuteRow(LScan(1, {0, 1}), &out).ok());
  ASSERT_EQ(out.size(), 10u);
  for (const Row& r : out) {
    EXPECT_EQ(AsInt(r[1]), 3000 + AsInt(r[0]));
  }
}

TEST_F(MvccIsolationTest, SlowScanNoLongerBlocksWriters) {
  // Pre-MVCC, RowTable::Scan held the shared latch for the whole scan, so a
  // writer (exclusive latch) stalled behind a slow reader. Scans now latch
  // per-step and rely on the snapshot for consistency: a writer must be
  // able to lock, update and COMMIT while a slow scan is still in flight.
  ASSERT_TRUE(rw_->CreateTable(KvSchema(4, "slow")).ok());
  const int64_t rows = 4 * static_cast<int64_t>(RowTable::kScanBatch);
  ASSERT_TRUE(rw_->BulkLoad(4, KvRows(rows, 0)).ok());

  std::atomic<bool> scan_started{false};
  std::atomic<bool> writer_done{false};
  std::atomic<bool> scan_finished{false};
  std::thread scanner([&] {
    ReadView view = txns_->OpenReadView();
    Status s = txns_->Scan(view, 4, [&](int64_t, const Row&) {
      scan_started.store(true);
      if (!writer_done.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      return true;
    });
    EXPECT_TRUE(s.ok());
    scan_finished.store(true);
  });
  while (!scan_started.load()) std::this_thread::yield();

  ASSERT_TRUE(UpdateOne(txns_, 4, 5, 42).ok());
  // The regression assertion: the commit landed while the scan was still
  // running (with the whole-scan latch it could only land after).
  EXPECT_FALSE(scan_finished.load())
      << "writer was blocked until the scan completed";
  writer_done.store(true);
  scanner.join();
  EXPECT_EQ(ReadV(4, 5), 42);
}

}  // namespace
}  // namespace imci
