// End-to-end tests for the alternative Phase#1 (§3.2's Binlog strawman made
// real): the RW node writes logical row events into the shared segmented
// binlog, and an RO node's pipeline consumes them through LogicalApplySource
// instead of reconstructing DMLs from physical REDO. Both propagation paths
// must converge to identical column-index contents — the property that makes
// the Fig. 11 comparison meaningful.
#include <gtest/gtest.h>

#include <chrono>
#include <numeric>
#include <thread>

#include "common/rng.h"
#include "tests/test_util.h"

namespace imci {
namespace {

using testing_util::Canonicalize;

std::shared_ptr<const Schema> SimpleSchema() {
  std::vector<ColumnDef> cols;
  cols.push_back({"id", DataType::kInt64, false, true});
  cols.push_back({"v", DataType::kInt64, false, true});
  cols.push_back({"s", DataType::kString, true, true});
  return std::make_shared<Schema>(1, "t1", cols, 0);
}

class LogicalApplyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterOptions opts;
    opts.initial_ro_nodes = 1;
    opts.ro.imci.row_group_size = 256;
    opts.ro.replication.source = ApplySource::kLogicalBinlog;
    cluster_ = std::make_unique<Cluster>(opts);
    ASSERT_TRUE(cluster_->CreateTable(SimpleSchema()).ok());
    std::vector<Row> rows;
    for (int64_t i = 0; i < 100; ++i) {
      rows.push_back({i, i * 2, std::string("base")});
    }
    ASSERT_TRUE(cluster_->BulkLoad(1, std::move(rows)).ok());
    ASSERT_TRUE(cluster_->Open().ok());
    txns_ = cluster_->rw()->txn_manager();
    txns_->set_binlog_enabled(true);
    ro_ = cluster_->ro(0);
  }

  std::vector<Row> RwTruth() {
    std::vector<Row> rows;
    (void)cluster_->rw()->engine()->GetTable(1)->Scan(
        [&](int64_t, const Row& row) {
          rows.push_back(row);
          return true;
        });
    return rows;
  }

  LogicalRef ScanAll() {
    std::vector<int> cols(3);
    std::iota(cols.begin(), cols.end(), 0);
    return LScan(1, std::move(cols));
  }

  std::unique_ptr<Cluster> cluster_;
  TransactionManager* txns_ = nullptr;
  RoNode* ro_ = nullptr;
};

TEST_F(LogicalApplyTest, InsertUpdateDeletePropagateThroughBinlog) {
  Transaction txn;
  txns_->Begin(&txn);
  ASSERT_TRUE(
      txns_->Insert(&txn, 1, {int64_t(1000), int64_t(1), std::string("new")})
          .ok());
  ASSERT_TRUE(
      txns_->Update(&txn, 1, 5, {int64_t(5), int64_t(999), Value{}}).ok());
  ASSERT_TRUE(txns_->Delete(&txn, 1, 7).ok());
  ASSERT_TRUE(txns_->Commit(&txn).ok());

  ASSERT_TRUE(ro_->CatchUpNow().ok());
  // The logical pipeline assigned the *same* commit VID the RW did, so read
  // views line up exactly with REDO reuse.
  EXPECT_EQ(ro_->applied_vid(), txn.commit_vid());
  EXPECT_EQ(ro_->pipeline()->committed_txns(), 1u);
  EXPECT_EQ(ro_->pipeline()->source(), ApplySource::kLogicalBinlog);

  std::vector<Row> col_rows;
  ASSERT_TRUE(ro_->ExecuteColumn(ScanAll(), &col_rows).ok());
  EXPECT_EQ(Canonicalize(col_rows), Canonicalize(RwTruth()));

  Row row;
  ColumnIndex* index = ro_->imci()->GetIndex(1);
  ASSERT_TRUE(index->LookupByPk(5, ro_->applied_vid(), &row).ok());
  EXPECT_EQ(AsInt(row[1]), 999);
  EXPECT_TRUE(index->LookupByPk(7, ro_->applied_vid(), &row).IsNotFound());
}

TEST_F(LogicalApplyTest, AbortedTransactionsNeverReachTheBinlog) {
  Transaction txn;
  txns_->Begin(&txn);
  ASSERT_TRUE(
      txns_->Insert(&txn, 1, {int64_t(2000), int64_t(1), Value{}}).ok());
  ASSERT_TRUE(txns_->Rollback(&txn).ok());
  EXPECT_EQ(cluster_->rw()->binlog()->txns_written(), 0u);
  ASSERT_TRUE(ro_->CatchUpNow().ok());
  EXPECT_EQ(ro_->pipeline()->committed_txns(), 0u);
  std::vector<Row> col_rows;
  ASSERT_TRUE(ro_->ExecuteColumn(ScanAll(), &col_rows).ok());
  EXPECT_EQ(col_rows.size(), 100u);  // only the bulk-loaded base
}

TEST_F(LogicalApplyTest, StrongReadsWaitOnCommitVidsAcrossLsnSpaces) {
  // Binlog LSNs are a different space from the RW's redo LSN, so the proxy's
  // strong-consistency wait translates the commit point observed at
  // submission through the binlog writer's commit-VID → binlog-LSN map and
  // waits on the node's applied binlog LSN — comparing redo LSNs across
  // spaces would spin forever (regression test).
  Transaction txn;
  txns_->Begin(&txn);
  ASSERT_TRUE(
      txns_->Insert(&txn, 1, {int64_t(3000), int64_t(3), Value{}}).ok());
  ASSERT_TRUE(txns_->Commit(&txn).ok());
  auto plan =
      LAgg(LScan(1, {0}), {}, {AggSpec{AggKind::kCountStar, nullptr}});
  std::vector<Row> out;
  ASSERT_TRUE(cluster_->proxy()
                  ->ExecuteQuery(plan, &out, Consistency::kStrong)
                  .ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(AsInt(out[0][0]), 101);  // read-your-writes observed the commit
}

TEST(BinlogRecycleTest, TruncatesBelowTheSlowestLogicalCursorAndNoFurther) {
  // Small segments so a short run seals several; recycling is
  // segment-granular like the redo path.
  ClusterOptions opts;
  opts.fs.log_segment_bytes = 512;
  opts.initial_ro_nodes = 1;
  opts.ro.imci.row_group_size = 256;
  opts.ro.replication.source = ApplySource::kLogicalBinlog;
  Cluster cluster(opts);
  ASSERT_TRUE(cluster.CreateTable(SimpleSchema()).ok());
  ASSERT_TRUE(cluster.BulkLoad(1, {{int64_t(0), int64_t(0), Value{}}}).ok());
  ASSERT_TRUE(cluster.Open().ok());
  auto* txns = cluster.rw()->txn_manager();

  auto churn = [&](int64_t base, int n) {
    for (int i = 0; i < n; ++i) {
      Transaction txn;
      txns->Begin(&txn);
      ASSERT_TRUE(txns->Insert(&txn, 1,
                               {base + i, int64_t(i),
                                std::string("payload-") + std::to_string(i)})
                      .ok());
      ASSERT_TRUE(txns->Commit(&txn).ok());
    }
  };
  churn(1000, 120);
  RoNode* ro = cluster.ro(0);
  ASSERT_TRUE(ro->CatchUpNow().ok());

  LogStore* binlog = cluster.fs()->log("binlog");
  const size_t segments_before = binlog->segment_count();
  ASSERT_GT(segments_before, 2u);

  // Direct recycle: everything below the (caught-up) logical cursor except
  // the active segment goes; the watermark never outruns the cursor.
  Lsn upto = 0;
  ASSERT_TRUE(cluster.RecycleBinlog(&upto).ok());
  EXPECT_GT(upto, 0u);
  EXPECT_LE(upto, ro->pipeline()->read_lsn());
  EXPECT_LT(binlog->segment_count(), segments_before);

  // The attached consumer keeps working across the truncation: more commits
  // still propagate and the column index still matches the RW truth.
  churn(5000, 40);
  ASSERT_TRUE(ro->CatchUpNow().ok());
  std::vector<Row> col_rows, truth;
  (void)cluster.rw()->engine()->GetTable(1)->Scan(
      [&](int64_t, const Row& row) {
        truth.push_back(row);
        return true;
      });
  ASSERT_TRUE(ro->ExecuteColumn(LScan(1, {0, 1, 2}), &col_rows).ok());
  EXPECT_EQ(Canonicalize(col_rows), Canonicalize(truth));

  // A *new* logical-apply node replays from LSN 0 over the base state; the
  // live log lost the recycled prefix, but the archive tier sealed it
  // before truncation, so the late joiner bootstraps across the gap and
  // converges to the same contents (mid-run scale-out on the binlog arm).
  RoNode* late = nullptr;
  ASSERT_TRUE(cluster.AddRoNode(&late).ok());
  ASSERT_TRUE(late->CatchUpNow().ok());
  EXPECT_EQ(late->applied_vid(), ro->applied_vid());
  std::vector<Row> late_rows;
  ASSERT_TRUE(late->ExecuteColumn(LScan(1, {0, 1, 2}), &late_rows).ok());
  EXPECT_EQ(Canonicalize(late_rows), Canonicalize(truth))
      << "late logical joiner diverged after archive bootstrap";
}

TEST(BinlogRecycleTest, LateJoinRefusedWhenArchiveDisabled) {
  // The pre-archive behavior, now opt-out: without the archive tier,
  // recycling destroys history and a post-recycle logical-apply boot must
  // refuse rather than silently skip the truncated transactions.
  ClusterOptions opts;
  opts.fs.log_segment_bytes = 512;
  opts.fs.enable_archive = false;
  opts.initial_ro_nodes = 1;
  opts.ro.imci.row_group_size = 256;
  opts.ro.replication.source = ApplySource::kLogicalBinlog;
  Cluster cluster(opts);
  ASSERT_TRUE(cluster.CreateTable(SimpleSchema()).ok());
  ASSERT_TRUE(cluster.BulkLoad(1, {{int64_t(0), int64_t(0), Value{}}}).ok());
  ASSERT_TRUE(cluster.Open().ok());
  auto* txns = cluster.rw()->txn_manager();
  for (int i = 0; i < 120; ++i) {
    Transaction txn;
    txns->Begin(&txn);
    ASSERT_TRUE(txns->Insert(&txn, 1,
                             {int64_t(1000 + i), int64_t(i),
                              std::string("payload-") + std::to_string(i)})
                    .ok());
    ASSERT_TRUE(txns->Commit(&txn).ok());
  }
  ASSERT_TRUE(cluster.ro(0)->CatchUpNow().ok());
  Lsn upto = 0;
  ASSERT_TRUE(cluster.RecycleBinlog(&upto).ok());
  ASSERT_GT(upto, 0u);
  RoNode* late = nullptr;
  EXPECT_FALSE(cluster.AddRoNode(&late).ok());
}

TEST(BinlogRecycleTest, CheckpointTriggerRecyclesTheBinlogArm) {
  ClusterOptions opts;
  opts.fs.log_segment_bytes = 512;
  opts.initial_ro_nodes = 1;
  opts.ro.imci.row_group_size = 256;
  opts.ro.replication.source = ApplySource::kLogicalBinlog;
  Cluster cluster(opts);
  ASSERT_TRUE(cluster.CreateTable(SimpleSchema()).ok());
  ASSERT_TRUE(cluster.BulkLoad(1, {{int64_t(0), int64_t(0), Value{}}}).ok());
  ASSERT_TRUE(cluster.Open().ok());
  auto* txns = cluster.rw()->txn_manager();
  for (int i = 0; i < 120; ++i) {
    Transaction txn;
    txns->Begin(&txn);
    ASSERT_TRUE(txns->Insert(&txn, 1,
                             {int64_t(1000 + i), int64_t(i),
                              std::string("payload-") + std::to_string(i)})
                    .ok());
    ASSERT_TRUE(txns->Commit(&txn).ok());
  }
  ASSERT_TRUE(cluster.ro(0)->CatchUpNow().ok());
  LogStore* binlog = cluster.fs()->log("binlog");
  const size_t segments_before = binlog->segment_count();
  ASSERT_GT(segments_before, 2u);
  // The periodic checkpoint cadence recycles the binlog arm too — long runs
  // with binlog enabled no longer leak segments.
  ASSERT_TRUE(cluster.TriggerCheckpoint().ok());
  EXPECT_GT(binlog->truncated_lsn(), 0u);
  EXPECT_LT(binlog->segment_count(), segments_before);

  // Wait for the leader's (asynchronous) checkpoint to land, then trigger
  // again: a logical leader's manifest records start_lsn = 0 — its cursor is
  // a *binlog-space* LSN and must never be applied to the redo log's
  // recycling (the two logs' LSN spaces are unrelated).
  Vid csn = 0;
  Lsn manifest_start = 0;
  for (int i = 0; i < 2000; ++i) {
    if (ImciCheckpoint::ReadLatestManifest(cluster.fs(), &csn,
                                           &manifest_start, nullptr)
            .ok()) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GT(csn, 0u);
  EXPECT_EQ(manifest_start, 0u);
  ASSERT_TRUE(cluster.TriggerCheckpoint().ok());
  EXPECT_EQ(cluster.fs()->log("redo")->truncated_lsn(), 0u);
}

TEST_F(LogicalApplyTest, BothPropagationPathsConvergeToIdenticalContents) {
  // Mixed churn through the RW node.
  Rng rng(testing_util::TestSeed(42));
  const int rounds = testing_util::TestIters(120);
  for (int i = 0; i < rounds; ++i) {
    Transaction txn;
    txns_->Begin(&txn);
    const int64_t pk = static_cast<int64_t>(rng.Next() % 100);
    Status s;
    switch (rng.Next() % 3) {
      case 0:
        s = txns_->Insert(&txn, 1,
                          {int64_t(10000 + i), int64_t(i),
                           std::string("ins-") + std::to_string(i)});
        break;
      case 1:
        s = txns_->Update(&txn, 1, pk,
                          {pk, int64_t(i * 7), std::string("upd")});
        break;
      default:
        s = txns_->Delete(&txn, 1, pk);
        break;
    }
    if (s.ok()) {
      ASSERT_TRUE(txns_->Commit(&txn).ok());
    } else {
      ASSERT_TRUE(txns_->Rollback(&txn).ok());
    }
  }

  // The cluster's RO consumed the *binlog*; boot a second node against the
  // same shared storage that consumes the *redo* log (the paper's design).
  ASSERT_TRUE(ro_->CatchUpNow().ok());
  RoNodeOptions redo_opts;
  redo_opts.imci.row_group_size = 256;
  redo_opts.replication.source = ApplySource::kRedoReuse;
  RoNode redo_node("redo-arm", cluster_->fs(), cluster_->catalog(),
                   redo_opts);
  ASSERT_TRUE(redo_node.Boot().ok());
  ASSERT_TRUE(redo_node.CatchUpNow().ok());

  // Same read views, identical contents, both equal to the RW truth.
  EXPECT_EQ(ro_->applied_vid(), redo_node.applied_vid());
  const auto truth = Canonicalize(RwTruth());
  std::vector<Row> binlog_rows, redo_rows;
  ASSERT_TRUE(ro_->ExecuteColumn(ScanAll(), &binlog_rows).ok());
  ASSERT_TRUE(redo_node.ExecuteColumn(ScanAll(), &redo_rows).ok());
  EXPECT_EQ(Canonicalize(binlog_rows), truth) << "logical-apply arm diverged";
  EXPECT_EQ(Canonicalize(redo_rows), truth) << "redo-reuse arm diverged";
}

}  // namespace
}  // namespace imci
