// End-to-end HTAP freshness test (the Figure 12 scenario): OLTP transactions
// executed on the RW node flow through the redo writer into shared storage,
// the RO replication pipeline parses and applies them to both the row-store
// replica (Phase#1) and the in-memory column indexes (Phase#2), and the two
// RO engines must converge to the RW's authoritative state with a bounded
// visibility delay.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "tests/test_util.h"
#include "workloads/chbench.h"

namespace imci {
namespace {

using chbench::ChBench;
using testing_util::Canonicalize;

constexpr chbench::ChTable kChTables[] = {
    chbench::kItem,   chbench::kWarehouse, chbench::kDistrict,
    chbench::kCustomer, chbench::kStock,   chbench::kOrder,
    chbench::kOrderLine, chbench::kNewOrder,
};

class HtapE2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterOptions opts;
    opts.initial_ro_nodes = 2;
    opts.ro.imci.row_group_size = 1024;
    cluster_ = std::make_unique<Cluster>(opts);
    bench_ = std::make_unique<ChBench>(/*warehouses=*/2, /*items=*/200);
    for (auto& schema : bench_->Schemas()) {
      ASSERT_TRUE(cluster_->CreateTable(schema).ok());
    }
    for (auto t : kChTables) {
      ASSERT_TRUE(cluster_->BulkLoad(t, bench_->Generate(t)).ok());
    }
    ASSERT_TRUE(cluster_->Open().ok());
  }

  LogicalRef ScanAll(TableId t) {
    auto schema = cluster_->catalog()->Get(t);
    std::vector<int> cols(schema->num_columns());
    std::iota(cols.begin(), cols.end(), 0);
    return LScan(t, std::move(cols));
  }

  /// The RW node's authoritative rows — the ground truth both RO engines
  /// must converge to.
  std::vector<Row> RwTruth(TableId t) {
    std::vector<Row> rows;
    (void)cluster_->rw()->engine()->GetTable(t)->Scan(
        [&](int64_t, const Row& row) {
          rows.push_back(row);
          return true;
        });
    return rows;
  }

  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<ChBench> bench_;
};

TEST_F(HtapE2eTest, RwChangesPropagateAndEnginesAgreeUnderConcurrentOltp) {
  const uint64_t seed = testing_util::TestSeed(101);
  const int txns_per_thread = testing_util::TestIters(150);
  SCOPED_TRACE(::testing::Message()
               << "IMCI_TEST_SEED=" << seed << " IMCI_TEST_ITERS="
               << txns_per_thread << " reproduces this run");

  // OLTP writers hammer the RW node while the background replication
  // pipelines tail the redo log (CALS) into both RO nodes.
  auto* txns = cluster_->rw()->txn_manager();
  constexpr int kThreads = 4;
  std::vector<std::thread> writers;
  std::atomic<int> committed{0};
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      Rng rng(seed + t);
      for (int i = 0; i < txns_per_thread; ++i) {
        if (bench_->RunTransaction(txns, &rng).ok()) {
          committed.fetch_add(1);
        }
        // Busy (lock timeout) / Aborted (TPC-C 1% rollback) are expected.
      }
    });
  }
  // Meanwhile an analytical reader must keep getting consistent snapshots
  // from the column engine — never an error, never a torn read view.
  std::atomic<bool> stop_reader{false};
  std::thread reader([&] {
    auto plan = LAgg(LScan(chbench::kDistrict, {0}), {},
                     {AggSpec{AggKind::kCountStar, nullptr}});
    while (!stop_reader.load()) {
      std::vector<Row> out;
      Status s = cluster_->proxy()->ExecuteQuery(plan, &out);
      EXPECT_TRUE(s.ok()) << s.ToString();
      if (s.ok()) {
        ASSERT_EQ(out.size(), 1u);
        // District rows are never inserted/deleted by the mix.
        EXPECT_EQ(AsInt(out[0][0]), 2 * 10);
      }
    }
  });
  for (auto& w : writers) w.join();
  stop_reader.store(true);
  reader.join();
  ASSERT_GT(committed.load(), 0);

  for (RoNode* ro : cluster_->ro_nodes()) {
    ASSERT_TRUE(ro->CatchUpNow().ok());
    // Every commit the RW produced was parsed and applied.
    EXPECT_EQ(ro->pipeline()->committed_txns(), txns->commits());
    EXPECT_EQ(ro->LsnDelay(), 0u);

    // Row replica (Phase#1 physical replay) and column index (Phase#2
    // logical apply) took independent paths from the same redo stream; both
    // must now equal the RW's authoritative row store, table by table.
    for (auto t : kChTables) {
      auto truth = Canonicalize(RwTruth(t));
      std::vector<Row> row_rows, col_rows;
      ASSERT_TRUE(ro->ExecuteRow(ScanAll(t), &row_rows).ok());
      ASSERT_TRUE(ro->ExecuteColumn(ScanAll(t), &col_rows).ok());
      EXPECT_EQ(Canonicalize(row_rows), truth)
          << ro->name() << " row replica diverged on table " << t;
      EXPECT_EQ(Canonicalize(col_rows), truth)
          << ro->name() << " column index diverged on table " << t;
    }

    // The CH-benCH analytical suite agrees across engines too.
    for (int q = 0; q < ChBench::kNumAnalytical; ++q) {
      std::vector<Row> row_out, col_out;
      auto row_exec = [&](const LogicalRef& plan, std::vector<Row>* out) {
        return ro->ExecuteRow(plan, out);
      };
      auto col_exec = [&](const LogicalRef& plan, std::vector<Row>* out) {
        return ro->ExecuteColumn(plan, out);
      };
      ASSERT_TRUE(
          ChBench::RunAnalytical(q, *cluster_->catalog(), row_exec, &row_out)
              .ok());
      ASSERT_TRUE(
          ChBench::RunAnalytical(q, *cluster_->catalog(), col_exec, &col_out)
              .ok());
      EXPECT_EQ(Canonicalize(col_out), Canonicalize(row_out))
          << ro->name() << " disagrees on analytical query " << q;
    }

    // The pipeline measured a visibility delay per commit, and it stayed
    // bounded (generous CI bound; the paper reports single-digit ms).
    auto* vd = ro->pipeline()->vd_histogram();
    EXPECT_GT(vd->Count(), 0u);
    EXPECT_LT(vd->Percentile(0.99), 5'000'000u) << "p99 VD above 5s";
  }

  // A strong (read-your-writes, §6.4) read through the proxy observes every
  // committed order immediately.
  std::vector<Row> strong;
  auto count_orders = LAgg(LScan(chbench::kOrder, {0}), {},
                           {AggSpec{AggKind::kCountStar, nullptr}});
  ASSERT_TRUE(cluster_->proxy()
                  ->ExecuteQuery(count_orders, &strong, Consistency::kStrong)
                  .ok());
  ASSERT_EQ(strong.size(), 1u);
  EXPECT_EQ(static_cast<uint64_t>(AsInt(strong[0][0])),
            cluster_->rw()->engine()->GetTable(chbench::kOrder)->row_count());
}

TEST_F(HtapE2eTest, CommitBecomesVisibleOnRoWithoutExplicitCatchUp) {
  // One committed transaction must surface on the RO through the background
  // pipeline alone (no CatchUpNow), within a bounded window — the liveness
  // half of the freshness claim.
  auto* txns = cluster_->rw()->txn_manager();
  Rng rng(testing_util::TestSeed(7));
  Status s;
  do {
    s = bench_->NewOrder(txns, &rng);
  } while (s.IsBusy());
  ASSERT_TRUE(s.ok()) << s.ToString();
  const Vid committed_vid = txns->last_commit_vid();

  RoNode* ro = cluster_->ro(0);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (ro->applied_vid() < committed_vid &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(ro->applied_vid(), committed_vid)
      << "commit not visible on RO within 10s";
}

}  // namespace
}  // namespace imci
