#include <gtest/gtest.h>

#include <thread>

#include "tests/test_util.h"
#include "workloads/chbench.h"

namespace imci {
namespace {

using chbench::ChBench;

class ChBenchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterOptions opts;
    opts.initial_ro_nodes = 1;
    opts.ro.imci.row_group_size = 1024;
    cluster_ = std::make_unique<Cluster>(opts);
    bench_ = std::make_unique<ChBench>(/*warehouses=*/2, /*items=*/200);
    for (auto& schema : bench_->Schemas()) {
      ASSERT_TRUE(cluster_->CreateTable(schema).ok());
    }
    for (auto t : {chbench::kItem, chbench::kWarehouse, chbench::kDistrict,
                   chbench::kCustomer, chbench::kStock, chbench::kOrder,
                   chbench::kOrderLine, chbench::kNewOrder}) {
      ASSERT_TRUE(cluster_->BulkLoad(t, bench_->Generate(t)).ok());
    }
    ASSERT_TRUE(cluster_->Open().ok());
  }
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<ChBench> bench_;
};

TEST_F(ChBenchTest, TransactionMixRunsAndReplicates) {
  auto* txns = cluster_->rw()->txn_manager();
  Rng rng(3);
  int committed = 0;
  for (int i = 0; i < 300; ++i) {
    Status s = bench_->RunTransaction(txns, &rng);
    if (s.ok()) committed++;
    // Busy (lock timeout) and Aborted (TPC-C 1% rollback) are expected.
  }
  EXPECT_GT(committed, 200);
  RoNode* ro = cluster_->ro(0);
  ASSERT_TRUE(ro->CatchUpNow().ok());
  // District next-order ids advanced and replicated consistently.
  Row district;
  ASSERT_TRUE(txns->Get(chbench::kDistrict, ChBench::DistrictPk(1, 1),
                        &district).ok());
  Row ro_district;
  ASSERT_TRUE(ro->imci()
                  ->GetIndex(chbench::kDistrict)
                  ->LookupByPk(ChBench::DistrictPk(1, 1), ro->applied_vid(),
                               &ro_district)
                  .ok());
  EXPECT_EQ(AsInt(district[3]), AsInt(ro_district[3]));
}

TEST_F(ChBenchTest, NewOrderIsAtomicUnderConcurrency) {
  auto* txns = cluster_->rw()->txn_manager();
  std::vector<std::thread> threads;
  std::atomic<int> new_orders{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(100 + t);
      for (int i = 0; i < 100; ++i) {
        if (bench_->NewOrder(txns, &rng).ok()) new_orders.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_GT(new_orders.load(), 0);
  RoNode* ro = cluster_->ro(0);
  ASSERT_TRUE(ro->CatchUpNow().ok());
  // Sum of per-district order counters == initial + committed new orders.
  int64_t total_next = 0;
  for (int w = 1; w <= 2; ++w) {
    for (int d = 1; d <= 10; ++d) {
      Row district;
      ASSERT_TRUE(
          txns->Get(chbench::kDistrict, ChBench::DistrictPk(w, d), &district)
              .ok());
      total_next += AsInt(district[3]) - 31;  // initial next_o_id is 31
    }
  }
  EXPECT_EQ(total_next, new_orders.load());
}

TEST_F(ChBenchTest, AnalyticalQueriesAgreeAcrossEngines) {
  auto* txns = cluster_->rw()->txn_manager();
  Rng rng(5);
  for (int i = 0; i < 150; ++i) (void)bench_->RunTransaction(txns, &rng);
  RoNode* ro = cluster_->ro(0);
  ASSERT_TRUE(ro->CatchUpNow().ok());
  ro->RefreshStats();
  for (int q = 0; q < ChBench::kNumAnalytical; ++q) {
    std::vector<Row> col_rows, row_rows;
    auto col = [&](const LogicalRef& p, std::vector<Row>* out) {
      return ro->ExecuteColumn(p, out);
    };
    auto row = [&](const LogicalRef& p, std::vector<Row>* out) {
      return ro->ExecuteRow(p, out);
    };
    ASSERT_TRUE(ChBench::RunAnalytical(q, *cluster_->catalog(), col,
                                       &col_rows).ok())
        << "CH-A" << q;
    ASSERT_TRUE(ChBench::RunAnalytical(q, *cluster_->catalog(), row,
                                       &row_rows).ok())
        << "CH-A" << q;
    EXPECT_EQ(testing_util::Canonicalize(col_rows),
              testing_util::Canonicalize(row_rows))
        << "CH-A" << q;
  }
}

TEST_F(ChBenchTest, DeliveryMarksOrderLines) {
  auto* txns = cluster_->rw()->txn_manager();
  Rng rng(11);
  int delivered = 0;
  for (int i = 0; i < 200 && delivered < 5; ++i) {
    if (bench_->Delivery(txns, &rng).ok()) delivered++;
  }
  ASSERT_GT(delivered, 0);
  RoNode* ro = cluster_->ro(0);
  ASSERT_TRUE(ro->CatchUpNow().ok());
  // Delivered lines have non-null delivery dates in the column index too.
  auto ol = cluster_->catalog()->GetByName("order_line");
  auto plan = LAgg(
      LScan(ol->table_id(), {ol->ColumnIndex("ol_delivery_d")},
            Not(IsNull(Col(0, DataType::kDate)))),
      {}, {AggSpec{AggKind::kCountStar, nullptr}});
  std::vector<Row> out;
  ASSERT_TRUE(ro->ExecuteColumn(plan, &out).ok());
  EXPECT_GT(AsInt(out[0][0]), 0);
}

}  // namespace
}  // namespace imci
