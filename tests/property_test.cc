#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "imci/rid_locator.h"
#include "rowstore/engine.h"
#include "tests/test_util.h"

namespace imci {
namespace {

std::shared_ptr<const Schema> ModelSchema() {
  std::vector<ColumnDef> cols;
  cols.push_back({"id", DataType::kInt64, false, true});
  cols.push_back({"payload", DataType::kString, true, true});
  return std::make_shared<Schema>(1, "t", cols, 0);
}

/// Model-based test: a random op sequence applied to both the page-based
/// B+tree (through RowTable) and a std::map reference; states must agree at
/// every checkpoint, and the scan must stay sorted.
class BTreeModelTest : public ::testing::TestWithParam<int> {};

TEST_P(BTreeModelTest, MatchesReferenceModel) {
  PolarFs fs;
  Catalog catalog;
  RowStoreEngine engine(&fs, &catalog);
  ASSERT_TRUE(engine.CreateTable(ModelSchema()).ok());
  RowTable* table = engine.GetTable(1);
  std::map<int64_t, std::string> model;
  const uint64_t seed = testing_util::TestSeed(GetParam());
  const int iters = testing_util::TestIters(4000);
  SCOPED_TRACE(::testing::Message() << "rerun with IMCI_TEST_SEED=" << seed
                                    << " IMCI_TEST_ITERS=" << iters);
  Rng rng(seed);
  std::vector<RedoRecord> redo;
  for (int op = 0; op < iters; ++op) {
    const int64_t pk = static_cast<int64_t>(rng.Next() % 800);
    const int action = rng.Next() % 3;
    redo.clear();
    if (action == 0) {
      std::string payload = rng.RandomString(0, 120);
      Status s = table->Insert({pk, payload}, &redo);
      if (model.count(pk)) {
        EXPECT_FALSE(s.ok()) << "duplicate insert must fail pk=" << pk;
      } else {
        ASSERT_TRUE(s.ok());
        model[pk] = payload;
      }
    } else if (action == 1) {
      std::string payload = rng.RandomString(0, 120);
      Row old_row;
      Status s = table->Update(pk, {pk, payload}, &old_row, &redo);
      if (model.count(pk)) {
        ASSERT_TRUE(s.ok());
        model[pk] = payload;
      } else {
        EXPECT_TRUE(s.IsNotFound());
      }
    } else {
      Row old_row;
      Status s = table->Delete(pk, &old_row, &redo);
      if (model.count(pk)) {
        ASSERT_TRUE(s.ok());
        model.erase(pk);
      } else {
        EXPECT_TRUE(s.IsNotFound());
      }
    }
    if (op % 500 == 499) {
      // Full-state comparison.
      std::map<int64_t, std::string> got;
      (void)table->Scan([&](int64_t key, const Row& row) {
        got[key] = IsNull(row[1]) ? "" : AsString(row[1]);
        return true;
      });
      ASSERT_EQ(got.size(), model.size()) << "at op " << op;
      EXPECT_EQ(got, model) << "at op " << op;
      EXPECT_EQ(table->row_count(), model.size());
    }
  }
  // Range scans agree with the model too.
  for (int trial = 0; trial < 20; ++trial) {
    int64_t lo = static_cast<int64_t>(rng.Next() % 800);
    int64_t hi = lo + static_cast<int64_t>(rng.Next() % 100);
    size_t expect = std::distance(model.lower_bound(lo),
                                  model.upper_bound(hi));
    size_t got = 0;
    (void)table->ScanRange(lo, hi, [&](int64_t, const Row&) {
      ++got;
      return true;
    });
    EXPECT_EQ(got, expect) << "[" << lo << "," << hi << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreeModelTest,
                         ::testing::Values(11, 22, 33, 44, 55));

/// Same approach for the RID locator (two-layer LSM): random put/erase
/// against a map, with small memtables to force flushes and merges.
class LocatorModelTest : public ::testing::TestWithParam<int> {};

TEST_P(LocatorModelTest, MatchesReferenceModel) {
  RidLocator locator(/*memtable_limit=*/RidLocator::kShards * 8);
  std::map<int64_t, Rid> model;
  const uint64_t seed = testing_util::TestSeed(GetParam());
  const int iters = testing_util::TestIters(20000);
  SCOPED_TRACE(::testing::Message() << "rerun with IMCI_TEST_SEED=" << seed
                                    << " IMCI_TEST_ITERS=" << iters);
  Rng rng(seed);
  for (int op = 0; op < iters; ++op) {
    const int64_t pk = static_cast<int64_t>(rng.Next() % 3000);
    if (rng.Next() % 3 != 0) {
      const Rid rid = rng.Next();
      locator.Put(pk, rid);
      model[pk] = rid;
    } else {
      locator.Erase(pk);
      model.erase(pk);
    }
    if (op % 2500 == 2499) {
      for (int64_t key = 0; key < 3000; key += 7) {
        Rid rid;
        Status s = locator.Get(key, &rid);
        auto it = model.find(key);
        if (it == model.end()) {
          EXPECT_TRUE(s.IsNotFound()) << key;
        } else {
          ASSERT_TRUE(s.ok()) << key;
          EXPECT_EQ(rid, it->second) << key;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LocatorModelTest,
                         ::testing::Values(5, 6, 7, 8));

/// Failure injection: corrupted REDO entries in the shared log must be
/// skipped by the reader without derailing later valid entries.
TEST(FailureInjectionTest, CorruptLogEntriesAreSkipped) {
  PolarFs fs;
  LogStore* log = fs.log("redo");
  RedoWriter writer(log);
  RedoRecord a;
  a.type = RedoType::kInsert;
  a.after_image = "good";
  writer.AppendOne(&a, false);
  // A record whose *frame* is valid but whose payload is not a RedoRecord —
  // the reader must skip it without derailing later valid entries.
  log->Append({"garbage-bytes-not-a-record"}, false);
  RedoRecord b;
  b.type = RedoType::kCommit;
  b.commit_vid = 9;
  std::string buf;
  b.lsn = log->written_lsn() + 1;
  b.Serialize(&buf);
  log->Append({buf}, false);
  RedoReader reader(log);
  std::vector<RedoRecord> records;
  reader.Read(0, 100, &records);
  ASSERT_EQ(records.size(), 2u);  // the corrupt middle entry was dropped
  EXPECT_EQ(records[0].type, RedoType::kInsert);
  EXPECT_EQ(records[1].type, RedoType::kCommit);
}

}  // namespace
}  // namespace imci
