#include <gtest/gtest.h>

#include "common/rng.h"
#include "imci/column_index.h"
#include "imci/compression.h"

namespace imci {
namespace {

std::shared_ptr<const Schema> TestSchema() {
  std::vector<ColumnDef> cols;
  cols.push_back({"id", DataType::kInt64, false, true});
  cols.push_back({"v", DataType::kInt64, false, true});
  cols.push_back({"d", DataType::kDouble, true, true});
  cols.push_back({"s", DataType::kString, true, true});
  return std::make_shared<Schema>(1, "t", cols, 0);
}

ColumnIndexOptions SmallGroups() {
  ColumnIndexOptions o;
  o.row_group_size = 64;
  return o;
}

TEST(ColumnIndexTest, InsertAndLookup) {
  ColumnIndex idx(TestSchema(), SmallGroups());
  ASSERT_TRUE(idx.Insert({int64_t(1), int64_t(10), 1.5, std::string("a")},
                         5).ok());
  Row row;
  ASSERT_TRUE(idx.LookupByPk(1, 5, &row).ok());
  EXPECT_EQ(AsInt(row[1]), 10);
  EXPECT_DOUBLE_EQ(AsDouble(row[2]), 1.5);
  // Not visible to an older snapshot.
  EXPECT_TRUE(idx.LookupByPk(1, 4, &row).IsNotFound());
}

TEST(ColumnIndexTest, OutOfPlaceUpdateKeepsOldVersionReadable) {
  ColumnIndex idx(TestSchema(), SmallGroups());
  ASSERT_TRUE(idx.Insert({int64_t(1), int64_t(10), Value{}, Value{}}, 1).ok());
  ASSERT_TRUE(idx.Update({int64_t(1), int64_t(20), Value{}, Value{}}, 2).ok());
  // Two physical versions exist: RID 0 (old) and RID 1 (new).
  EXPECT_EQ(idx.next_rid(), 2u);
  auto g = idx.group(0);
  EXPECT_TRUE(g->Visible(0, 1));
  EXPECT_FALSE(g->Visible(0, 2));
  EXPECT_FALSE(g->Visible(1, 1));
  EXPECT_TRUE(g->Visible(1, 2));
  EXPECT_EQ(idx.visible_rows(1), 1u);
  EXPECT_EQ(idx.visible_rows(2), 1u);
}

TEST(ColumnIndexTest, DeleteRemovesLocatorMapping) {
  ColumnIndex idx(TestSchema(), SmallGroups());
  ASSERT_TRUE(idx.Insert({int64_t(7), int64_t(1), Value{}, Value{}}, 1).ok());
  ASSERT_TRUE(idx.Delete(7, 2).ok());
  Row row;
  EXPECT_TRUE(idx.LookupByPk(7, 3, &row).IsNotFound());
  EXPECT_TRUE(idx.Delete(7, 3).IsNotFound());
  EXPECT_EQ(idx.visible_rows(1), 1u);  // old snapshot still sees it
  EXPECT_EQ(idx.visible_rows(2), 0u);
}

TEST(ColumnIndexTest, GroupsGrowAcrossBoundary) {
  ColumnIndex idx(TestSchema(), SmallGroups());
  for (int64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(idx.Insert({i, i, Value{}, Value{}}, 1).ok());
  }
  EXPECT_EQ(idx.num_groups(), 4u);  // 64*3 = 192 < 200
  EXPECT_EQ(idx.GroupUsed(0), 64u);
  EXPECT_EQ(idx.GroupUsed(3), 8u);
  EXPECT_EQ(idx.visible_rows(1), 200u);
}

TEST(ColumnIndexTest, PackMetaTracksMinMax) {
  ColumnIndex idx(TestSchema(), SmallGroups());
  for (int64_t i = 0; i < 64; ++i) {
    ASSERT_TRUE(idx.Insert({i, 1000 + i, Value{}, Value{}}, 1).ok());
  }
  auto g = idx.group(0);
  const PackMeta& m = g->meta(idx.PackForColumn(1));
  EXPECT_EQ(m.min_i, 1000);
  EXPECT_EQ(m.max_i, 1063);
  EXPECT_EQ(m.value_count, 64u);
  EXPECT_FALSE(m.sample.empty());
}

TEST(ColumnIndexTest, FreezeCompressesFullGroups) {
  ColumnIndex idx(TestSchema(), SmallGroups());
  for (int64_t i = 0; i < 64; ++i) {
    ASSERT_TRUE(
        idx.Insert({i, i % 4, 0.5, std::string("tag") +
                    std::to_string(i % 3)}, 1).ok());
  }
  size_t bytes = idx.FreezeFullGroups();
  EXPECT_GT(bytes, 0u);
  auto g = idx.group(0);
  EXPECT_TRUE(g->frozen());
  // Compressed form is far smaller than raw 64 * (8+8+8+string).
  EXPECT_LT(g->compressed_bytes(), 64u * 30);
  // Data remains readable after freeze (copy-on-write).
  Row row;
  ASSERT_TRUE(idx.LookupByPk(5, 1, &row).ok());
  EXPECT_EQ(AsInt(row[1]), 1);
}

TEST(ColumnIndexTest, InsertVidMapDropping) {
  ColumnIndex idx(TestSchema(), SmallGroups());
  for (int64_t i = 0; i < 64; ++i) {
    ASSERT_TRUE(idx.Insert({i, i, Value{}, Value{}}, 2).ok());
  }
  idx.FreezeFullGroups();
  // Oldest active view at VID 1: map must be kept.
  EXPECT_EQ(idx.DropInsertVidMaps(1), 0u);
  // Oldest active view newer than every insert: map dropped, rows stay
  // visible.
  EXPECT_EQ(idx.DropInsertVidMaps(10), 1u);
  EXPECT_TRUE(idx.group(0)->insert_vids_dropped());
  EXPECT_EQ(idx.visible_rows(10), 64u);
}

TEST(ColumnIndexTest, PreCommitInvisibleUntilRectified) {
  ColumnIndex idx(TestSchema(), SmallGroups());
  Rid base = idx.PreAllocate(10);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(idx.PreWrite(base + i,
                             {int64_t(i), int64_t(i), Value{}, Value{}}).ok());
  }
  EXPECT_EQ(idx.visible_rows(kMaxVid - 1), 0u);
  Row row;
  EXPECT_TRUE(idx.LookupByPk(3, 100, &row).IsNotFound());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(idx.RectifyInsert(base + i, i, 50).ok());
  }
  EXPECT_EQ(idx.visible_rows(50), 10u);
  ASSERT_TRUE(idx.LookupByPk(3, 50, &row).ok());
}

TEST(RidLocatorTest, PutGetEraseAcrossFlushes) {
  RidLocator locator(/*memtable_limit=*/64);
  for (int64_t pk = 0; pk < 1000; ++pk) locator.Put(pk, pk * 2);
  Rid rid;
  for (int64_t pk = 0; pk < 1000; pk += 37) {
    ASSERT_TRUE(locator.Get(pk, &rid).ok());
    EXPECT_EQ(rid, static_cast<Rid>(pk * 2));
  }
  locator.Erase(500);
  EXPECT_TRUE(locator.Get(500, &rid).IsNotFound());
  // Overwrite maps to the newest RID.
  locator.Put(7, 999);
  ASSERT_TRUE(locator.Get(7, &rid).ok());
  EXPECT_EQ(rid, 999u);
}

TEST(RidLocatorTest, TombstonesSurviveRunFlushes) {
  RidLocator locator(16);
  for (int64_t pk = 0; pk < 400; ++pk) locator.Put(pk, pk);
  for (int64_t pk = 0; pk < 400; pk += 2) locator.Erase(pk);
  // More churn to force flushes and merges.
  for (int64_t pk = 1000; pk < 1400; ++pk) locator.Put(pk, pk);
  Rid rid;
  for (int64_t pk = 0; pk < 400; ++pk) {
    if (pk % 2 == 0) {
      EXPECT_TRUE(locator.Get(pk, &rid).IsNotFound()) << pk;
    } else {
      ASSERT_TRUE(locator.Get(pk, &rid).ok()) << pk;
    }
  }
}

TEST(RidLocatorTest, SnapshotIsImmutableUnderConcurrentWrites) {
  RidLocator locator(32);
  for (int64_t pk = 0; pk < 100; ++pk) locator.Put(pk, pk);
  auto snapshot = locator.Snapshot();
  size_t snap_entries = 0;
  for (auto& runs : snapshot) {
    for (auto& run : runs) snap_entries += run->entries.size();
  }
  EXPECT_EQ(snap_entries, 100u);
  // Mutations after the snapshot do not stain it (functional split, §7).
  for (int64_t pk = 100; pk < 200; ++pk) locator.Put(pk, pk);
  locator.Erase(5);
  size_t snap_entries2 = 0;
  for (auto& runs : snapshot) {
    for (auto& run : runs) snap_entries2 += run->entries.size();
  }
  EXPECT_EQ(snap_entries2, 100u);
  // Restore into a fresh locator reproduces the snapshot state.
  RidLocator restored(32);
  restored.Restore(snapshot);
  Rid rid;
  ASSERT_TRUE(restored.Get(5, &rid).ok());
  EXPECT_TRUE(restored.Get(150, &rid).IsNotFound());
}

// --- Compression property sweeps ------------------------------------------

struct IntPattern {
  const char* name;
  std::function<int64_t(int64_t, Rng&)> gen;
};

class IntCodecParam : public ::testing::TestWithParam<int> {};

TEST_P(IntCodecParam, RoundTripPatterns) {
  Rng rng(GetParam());
  std::vector<std::vector<int64_t>> patterns;
  // Sequential (delta-friendly), constant, small-range, random, negatives.
  std::vector<int64_t> v;
  for (int64_t i = 0; i < 5000; ++i) v.push_back(1'000'000 + i);
  patterns.push_back(v);
  patterns.push_back(std::vector<int64_t>(1000, 42));
  v.clear();
  for (int i = 0; i < 3000; ++i) v.push_back(100 + rng.Next() % 16);
  patterns.push_back(v);
  v.clear();
  for (int i = 0; i < 2000; ++i) v.push_back(static_cast<int64_t>(rng.Next()));
  patterns.push_back(v);
  v.clear();
  for (int i = 0; i < 1000; ++i) v.push_back(-500 + (int64_t)(rng.Next() % 1000));
  patterns.push_back(v);
  patterns.push_back({});                          // empty
  patterns.push_back({int64_t(1) << 62, -(int64_t(1) << 62), 0});  // extremes
  for (auto& p : patterns) {
    std::string buf;
    IntCodec::Encode(p, &buf);
    std::vector<int64_t> out;
    ASSERT_TRUE(IntCodec::Decode(buf, &out).ok());
    EXPECT_EQ(out, p);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntCodecParam, ::testing::Values(1, 2, 3));

TEST(IntCodecTest, SequentialDataCompressesWell) {
  std::vector<int64_t> v;
  for (int64_t i = 0; i < 10000; ++i) v.push_back(i);
  std::string buf;
  IntCodec::Encode(v, &buf);
  // 10k sequential int64s (80KB raw) should bitpack to ~nothing.
  EXPECT_LT(buf.size(), 4000u);
}

TEST(DictCodecTest, RoundTripAndCompression) {
  std::vector<std::string> v;
  const char* tags[] = {"alpha", "beta", "gamma"};
  for (int i = 0; i < 5000; ++i) v.push_back(tags[i % 3]);
  std::string buf;
  DictCodec::Encode(v, &buf);
  EXPECT_LT(buf.size(), 3000u);  // 2 bits/code + tiny dictionary
  std::vector<std::string> out;
  ASSERT_TRUE(DictCodec::Decode(buf, &out).ok());
  EXPECT_EQ(out, v);
  // Empty and single-value edge cases.
  buf.clear();
  DictCodec::Encode({}, &buf);
  ASSERT_TRUE(DictCodec::Decode(buf, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(DoubleCodecTest, RoundTrip) {
  std::vector<double> v = {0.0, -1.5, 3.14159, 1e300, -1e-300};
  std::string buf;
  DoubleCodec::Encode(v, &buf);
  std::vector<double> out;
  ASSERT_TRUE(DoubleCodec::Decode(buf, &out).ok());
  EXPECT_EQ(out, v);
}

TEST(ReadViewRegistryTest, MinActiveTracksPins) {
  ReadViewRegistry reg;
  EXPECT_EQ(reg.MinActive(100), 100u);
  uint64_t t1 = reg.Pin(50);
  uint64_t t2 = reg.Pin(70);
  EXPECT_EQ(reg.MinActive(100), 50u);
  reg.Unpin(t1);
  EXPECT_EQ(reg.MinActive(100), 70u);
  reg.Unpin(t2);
  EXPECT_EQ(reg.MinActive(100), 100u);
}

}  // namespace
}  // namespace imci
