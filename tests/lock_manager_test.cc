#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "rowstore/engine.h"
#include "rowstore/lock_manager.h"

namespace imci {
namespace {

// Short lock-wait timeout so conflict cases resolve quickly.
constexpr uint64_t kShortTimeoutUs = 3'000;

TEST(LockManagerTest, ExclusiveConflictsWithExclusive) {
  LockManager lm(kShortTimeoutUs);
  ASSERT_TRUE(lm.Lock(1, 7, 42).ok());
  EXPECT_TRUE(lm.Lock(2, 7, 42).IsBusy());
  // Different key or table: no conflict.
  EXPECT_TRUE(lm.Lock(2, 7, 43).ok());
  EXPECT_TRUE(lm.Lock(2, 8, 42).ok());
}

TEST(LockManagerTest, ExclusiveIsReentrant) {
  LockManager lm(kShortTimeoutUs);
  ASSERT_TRUE(lm.Lock(1, 7, 42).ok());
  EXPECT_TRUE(lm.Lock(1, 7, 42).ok());
  EXPECT_EQ(lm.HeldCount(1), 1u);
}

TEST(LockManagerTest, SharedIsCompatibleWithShared) {
  LockManager lm(kShortTimeoutUs);
  ASSERT_TRUE(lm.LockShared(1, 7, 42).ok());
  ASSERT_TRUE(lm.LockShared(2, 7, 42).ok());
  ASSERT_TRUE(lm.LockShared(3, 7, 42).ok());
  // Re-entrant share keeps a single hold.
  ASSERT_TRUE(lm.LockShared(1, 7, 42).ok());
  EXPECT_EQ(lm.HeldCount(1), 1u);
}

TEST(LockManagerTest, SharedBlocksExclusiveAndViceVersa) {
  LockManager lm(kShortTimeoutUs);
  ASSERT_TRUE(lm.LockShared(1, 7, 42).ok());
  EXPECT_TRUE(lm.Lock(2, 7, 42).IsBusy());  // S held, X wanted
  lm.Unlock(1, 7, 42);
  ASSERT_TRUE(lm.Lock(2, 7, 42).ok());
  EXPECT_TRUE(lm.LockShared(1, 7, 42).IsBusy());  // X held, S wanted
}

TEST(LockManagerTest, ExclusiveHolderGetsSharedForFree) {
  LockManager lm(kShortTimeoutUs);
  ASSERT_TRUE(lm.Lock(1, 7, 42).ok());
  EXPECT_TRUE(lm.LockShared(1, 7, 42).ok());
  EXPECT_EQ(lm.HeldCount(1), 1u);
}

TEST(LockManagerTest, SoleSharerUpgradesOthersTimeout) {
  LockManager lm(kShortTimeoutUs);
  ASSERT_TRUE(lm.LockShared(1, 7, 42).ok());
  // Sole shared holder may upgrade in place.
  ASSERT_TRUE(lm.Lock(1, 7, 42).ok());
  EXPECT_TRUE(lm.LockShared(2, 7, 42).IsBusy());
  lm.UnlockAll(1);

  // With two sharers, neither can upgrade (classic upgrade deadlock is
  // resolved by the wait timeout).
  ASSERT_TRUE(lm.LockShared(1, 7, 42).ok());
  ASSERT_TRUE(lm.LockShared(2, 7, 42).ok());
  EXPECT_TRUE(lm.Lock(1, 7, 42).IsBusy());
}

TEST(LockManagerTest, UnlockByNonOwnerIsNoOp) {
  LockManager lm(kShortTimeoutUs);
  ASSERT_TRUE(lm.Lock(1, 7, 42).ok());
  lm.Unlock(2, 7, 42);
  EXPECT_TRUE(lm.Lock(2, 7, 42).IsBusy());  // tid 1 still owns it
}

TEST(LockManagerTest, UnlockAllReleasesEveryHold) {
  LockManager lm(kShortTimeoutUs);
  for (int64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(lm.Lock(1, 7, k).ok());
  }
  for (int64_t k = 100; k < 150; ++k) {
    ASSERT_TRUE(lm.LockShared(1, 8, k).ok());
  }
  ASSERT_TRUE(lm.Lock(2, 9, 1).ok());  // unrelated holder survives
  EXPECT_EQ(lm.HeldCount(1), 150u);
  lm.UnlockAll(1);
  EXPECT_EQ(lm.HeldCount(1), 0u);
  EXPECT_EQ(lm.HeldCount(2), 1u);
  // All released keys are immediately grantable to others.
  for (int64_t k = 0; k < 100; ++k) {
    EXPECT_TRUE(lm.Lock(3, 7, k).ok());
  }
}

TEST(LockManagerTest, ReleaseWakesWaiter) {
  LockManager lm(/*timeout_us=*/2'000'000);
  ASSERT_TRUE(lm.Lock(1, 7, 42).ok());
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    Status s = lm.Lock(2, 7, 42);
    EXPECT_TRUE(s.ok()) << s.ToString();
    acquired.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(acquired.load());
  lm.UnlockAll(1);
  waiter.join();
  EXPECT_TRUE(acquired.load());
}

std::shared_ptr<const Schema> TwoColSchema() {
  std::vector<ColumnDef> cols;
  cols.push_back({"id", DataType::kInt64, false, true});
  cols.push_back({"v", DataType::kInt64, false, true});
  return std::make_shared<Schema>(1, "t", cols, 0);
}

/// Release-all-on-commit through the transaction manager: rows touched by a
/// committed (or rolled-back) transaction are immediately lockable again.
TEST(LockManagerTest, TransactionCommitReleasesAllRowLocks) {
  PolarFs fs;
  Catalog catalog;
  RowStoreEngine engine(&fs, &catalog);
  RedoWriter redo(fs.log("redo"));
  LockManager locks(kShortTimeoutUs);
  TransactionManager txns(&engine, &redo, &locks);
  ASSERT_TRUE(engine.CreateTable(TwoColSchema()).ok());

  Transaction writer;
  txns.Begin(&writer);
  for (int64_t pk = 0; pk < 10; ++pk) {
    ASSERT_TRUE(txns.Insert(&writer, 1, {pk, pk * 2}).ok());
  }
  EXPECT_EQ(locks.HeldCount(writer.tid()), 10u);

  // A concurrent transaction cannot touch the uncommitted rows.
  Transaction other;
  txns.Begin(&other);
  Row row;
  EXPECT_TRUE(txns.GetForUpdate(&other, 1, 3, &row).IsBusy());

  ASSERT_TRUE(txns.Commit(&writer).ok());
  EXPECT_EQ(locks.HeldCount(writer.tid()), 0u);
  // ... and after commit every one of them is grantable.
  for (int64_t pk = 0; pk < 10; ++pk) {
    ASSERT_TRUE(txns.GetForUpdate(&other, 1, pk, &row).ok());
    EXPECT_EQ(AsInt(row[1]), pk * 2);
  }
  ASSERT_TRUE(txns.Rollback(&other).ok());
  EXPECT_EQ(locks.HeldCount(other.tid()), 0u);
}

}  // namespace
}  // namespace imci
