// Distributed analytics: the multi-RO fragment coordinator.
//
// The coordinator's contract mirrors the morsel executor's one level up:
// distribution is invisible in the answer. Any fan-out, any participant
// set, any failover schedule must return what a single RO returns at the
// same snapshot — and a participant dying mid-query must never surface as
// a client-visible error. The suite drives that contract three ways:
// result equivalence over the TPC-H plan corpus, fragment failover under
// targeted fault injection and live eviction, and all-or-nothing snapshot
// visibility under concurrent RW commits (including the straggler arm
// where a lagging participant is shed via Busy).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/rng.h"
#include "exec/serde.h"
#include "plan/fragment.h"
#include "tests/test_util.h"

namespace imci {
namespace {

using testing_util::Canonicalize;

// --- Serde round-trips --------------------------------------------------

TEST(FragmentSerdeTest, RowsRoundTripExactly) {
  std::vector<Row> rows;
  rows.push_back(Row{int64_t{42}, 3.14159265358979, std::string("abc"),
                     Value{}});
  rows.push_back(Row{int64_t{-7}, -0.0, std::string(""), int64_t{1} << 62});
  std::string buf;
  PutRows(&buf, rows);
  ByteReader r(buf);
  std::vector<Row> back;
  ASSERT_TRUE(GetRows(&r, &back).ok());
  ASSERT_TRUE(r.done());
  ASSERT_EQ(back.size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) EXPECT_EQ(back[i], rows[i]);
  // Truncated buffers must fail cleanly, never read out of bounds.
  for (size_t cut = 0; cut < buf.size(); cut += 3) {
    ByteReader short_r(buf.data(), cut);
    std::vector<Row> ignored;
    (void)GetRows(&short_r, &ignored);  // any Status is fine; no UB
  }
}

TEST(FragmentSerdeTest, PlanRoundTripPreservesStructure) {
  auto scan = LScan(77, {0, 1, 2},
                    Ge(Col(2, DataType::kDouble), ConstDouble(1.5)));
  scan->part_col = 0;
  scan->part_has_lo = true;
  scan->part_lo = 100;
  auto plan = LSort(
      LAgg(scan, {1},
           {AggSpec{AggKind::kSum, Col(2, DataType::kDouble)},
            AggSpec{AggKind::kCountStar, nullptr}}),
      {SortKey{1, true}}, 10);
  std::string buf;
  PutPlan(&buf, plan);
  ByteReader r(buf);
  LogicalRef back;
  ASSERT_TRUE(GetPlan(&r, &back).ok());
  ASSERT_TRUE(r.done());
  std::string buf2;
  PutPlan(&buf2, back);
  EXPECT_EQ(buf, buf2);  // re-encoding the decoded plan is byte-identical
  ASSERT_EQ(back->kind, LogicalKind::kSort);
  const auto& rescan = back->children[0]->children[0];
  EXPECT_EQ(rescan->part_col, 0);
  EXPECT_TRUE(rescan->part_has_lo);
  EXPECT_EQ(rescan->part_lo, 100);
  EXPECT_FALSE(rescan->part_has_hi);
}

// --- Shared TPC-H fixture -----------------------------------------------

std::unique_ptr<Cluster> MakeDistCluster(int ros) {
  ClusterOptions opts;
  opts.initial_ro_nodes = ros;
  opts.ro.imci.row_group_size = 512;  // many groups -> real range cutting
  opts.ro.exec_threads = 4;
  // Aggressive coordinator knobs: at test scale every analytic plan should
  // distribute, so the equivalence corpus actually exercises the fan-out.
  opts.coordinator.min_rows_touched = 0;
  opts.coordinator.rows_per_fragment = 500.0;
  auto cluster = std::make_unique<Cluster>(opts);
  tpch::TpchGen gen(0.01);
  for (auto& schema : gen.Schemas()) {
    if (!cluster->CreateTable(schema).ok()) return nullptr;
  }
  for (auto table : {tpch::kRegion, tpch::kNation, tpch::kSupplier,
                     tpch::kPart, tpch::kPartsupp, tpch::kCustomer,
                     tpch::kOrders, tpch::kLineitem}) {
    if (!cluster->BulkLoad(table, gen.Generate(table)).ok()) return nullptr;
  }
  if (!cluster->Open().ok()) return nullptr;
  return cluster;
}

class DistExecTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    cluster_ = MakeDistCluster(3).release();
    ASSERT_NE(cluster_, nullptr);
    for (RoNode* ro : cluster_->ro_nodes()) {
      ASSERT_TRUE(ro->CatchUpNow().ok());
      ro->RefreshStats();
    }
  }
  static void TearDownTestSuite() {
    delete cluster_;
    cluster_ = nullptr;
  }
  void TearDown() override { fault::Registry::Instance().Reset(); }

  /// Single-RO serial reference: the executor the paper's results are
  /// defined against. Distribution must be indistinguishable from this.
  static Status Reference(const LogicalRef& plan, std::vector<Row>* out) {
    return cluster_->ro(0)->ExecuteColumn(plan, out, 1);
  }

  /// Distributed-first execution, falling back to the reference path when
  /// the coordinator declines — exactly what Proxy::ExecuteQuery does.
  static Status Distributed(const LogicalRef& plan, std::vector<Row>* out,
                            bool* attempted = nullptr) {
    bool local_attempted = false;
    Status s = cluster_->coordinator()->Execute(plan, 0, out,
                                               &local_attempted);
    if (attempted) *attempted = local_attempted;
    if (local_attempted) return s;
    return Reference(plan, out);
  }

  static Cluster* cluster_;
};

Cluster* DistExecTest::cluster_ = nullptr;

// --- Equivalence over the TPC-H corpus ----------------------------------

// Every TPC-H query through the coordinator equals the single-RO serial
// reference. Queries the coordinator declines (unsupported shapes, tiny
// subquery plans) take the fallback path and compare trivially; the counter
// assertion at the end proves a healthy share genuinely distributed.
class DistTpchEquivalence : public DistExecTest,
                            public ::testing::WithParamInterface<int> {};

TEST_P(DistTpchEquivalence, DistributedMatchesSingleNode) {
  const int q = GetParam();
  const uint64_t before = cluster_->coordinator()->queries_distributed();
  std::vector<Row> ref_rows, dist_rows;
  ASSERT_TRUE(tpch::RunQuery(q, *cluster_->catalog(), Reference, &ref_rows)
                  .ok())
      << "reference failed on Q" << q;
  auto dist_exec = [](const LogicalRef& plan, std::vector<Row>* out) {
    return Distributed(plan, out);
  };
  ASSERT_TRUE(tpch::RunQuery(q, *cluster_->catalog(), dist_exec, &dist_rows)
                  .ok())
      << "distributed failed on Q" << q;
  EXPECT_EQ(Canonicalize(dist_rows), Canonicalize(ref_rows)) << "Q" << q;
  // The well-known distributable shapes must actually fan out, or the whole
  // comparison above is vacuous.
  if (q == 1 || q == 6) {
    EXPECT_GT(cluster_->coordinator()->queries_distributed(), before)
        << "Q" << q << " was expected to distribute";
  }
}

INSTANTIATE_TEST_SUITE_P(AllQueries, DistTpchEquivalence,
                         ::testing::Range(1, 23));

// Integer-only plans must round-trip bit-exactly — no Canonicalize rounding
// involved; sorted outputs must also agree on order (k-way merge ties are
// broken by full-row comparison, same as the single-node sort).
TEST_F(DistExecTest, IntegerResultsBitExactAndOrdered) {
  auto li = cluster_->catalog()->GetByName("lineitem");
  const int supp = tpch::ColOf(*li, "l_suppkey");
  const int line = tpch::ColOf(*li, "l_linenumber");
  auto agg = LAgg(LScan(li->table_id(), {line, supp}), {0},
                  {AggSpec{AggKind::kCountStar, nullptr},
                   AggSpec{AggKind::kMin, Col(1, DataType::kInt64)},
                   AggSpec{AggKind::kMax, Col(1, DataType::kInt64)}});
  auto sorted = LSort(LScan(li->table_id(), {line, supp}),
                      {SortKey{0, false}, SortKey{1, true}}, 500);
  for (const auto& plan : {agg, sorted}) {
    std::vector<Row> ref_rows, dist_rows;
    ASSERT_TRUE(Reference(plan, &ref_rows).ok());
    bool attempted = false;
    ASSERT_TRUE(
        cluster_->coordinator()->Execute(plan, 0, &dist_rows, &attempted)
            .ok());
    ASSERT_TRUE(attempted);
    EXPECT_EQ(dist_rows, ref_rows);  // exact, order included
  }
}

// Participant-count sweep: 2- and 3-way fan-outs of the same plan agree
// with each other and the reference (the bench gate's correctness half).
TEST_F(DistExecTest, AnswerInvariantAcrossParticipantCounts) {
  auto li = cluster_->catalog()->GetByName("lineitem");
  const int qty = tpch::ColOf(*li, "l_quantity");
  const int price = tpch::ColOf(*li, "l_extendedprice");
  auto plan = LAgg(LScan(li->table_id(), {qty, price}), {0},
                   {AggSpec{AggKind::kSum, Col(1, DataType::kDouble)},
                    AggSpec{AggKind::kAvg, Col(1, DataType::kDouble)},
                    AggSpec{AggKind::kCountStar, nullptr}});
  std::vector<Row> ref_rows;
  ASSERT_TRUE(Reference(plan, &ref_rows).ok());
  const auto reference = Canonicalize(ref_rows);
  auto* coord = cluster_->coordinator();
  for (int n : {2, 3}) {
    coord->set_max_participants(n);
    DistQueryStats stats;
    std::vector<Row> out;
    bool attempted = false;
    ASSERT_TRUE(coord->Execute(plan, 0, &out, &attempted, &stats).ok());
    ASSERT_TRUE(attempted) << n << " participants";
    EXPECT_EQ(stats.participants, n);
    EXPECT_GE(stats.fragments, 2);
    EXPECT_EQ(Canonicalize(out), reference) << n << " participants";
  }
  coord->set_max_participants(8);
}

// --- Failover -----------------------------------------------------------

// One participant's fragment service hard-fails (in-process stand-in for a
// node dying mid-query). The coordinator must re-dispatch its fragments on
// surviving peers and still answer identically — with the retry counter
// proving the failover path ran. Reverting the retry wiring makes this
// fail: the first fragment error would abandon distribution, `attempted`
// stays false, and the retries assertion reads zero.
TEST_F(DistExecTest, FragmentFailoverOnFaultedNode) {
  auto li = cluster_->catalog()->GetByName("lineitem");
  const int qty = tpch::ColOf(*li, "l_quantity");
  auto plan = LAgg(LScan(li->table_id(), {qty}), {},
                   {AggSpec{AggKind::kSum, Col(0, DataType::kInt64)},
                    AggSpec{AggKind::kCountStar, nullptr}});
  std::vector<Row> ref_rows;
  ASSERT_TRUE(Reference(plan, &ref_rows).ok());
  const std::string victim = cluster_->ro(1)->name();
  fault::Policy p;
  p.kind = fault::Kind::kFail;
  p.scope = victim;  // only ro1's fragment executions fail
  fault::ScopedFault fault("fragment.execute", p);
  auto* coord = cluster_->coordinator();
  const uint64_t retries_before = coord->retries();
  DistQueryStats stats;
  std::vector<Row> out;
  bool attempted = false;
  ASSERT_TRUE(coord->Execute(plan, 0, &out, &attempted, &stats).ok());
  ASSERT_TRUE(attempted) << "failover should rescue the query, not abandon";
  EXPECT_EQ(Canonicalize(out), Canonicalize(ref_rows));
  EXPECT_GT(coord->retries(), retries_before);
  for (const auto& t : stats.timings) {
    EXPECT_NE(t.node, victim);  // every fragment completed elsewhere
  }
}

// Live eviction during a stream of distributed queries: a participant is
// torn out of the fleet (sessions drained, node destroyed) while queries
// are in flight. Zero client-visible errors, every answer correct.
TEST_F(DistExecTest, EvictionMidQueryStreamIsInvisible) {
  auto cluster = MakeDistCluster(3);
  ASSERT_NE(cluster, nullptr);
  for (RoNode* ro : cluster->ro_nodes()) {
    ASSERT_TRUE(ro->CatchUpNow().ok());
    ro->RefreshStats();
  }
  auto li = cluster->catalog()->GetByName("lineitem");
  const int qty = tpch::ColOf(*li, "l_quantity");
  auto plan = LAgg(LScan(li->table_id(), {qty}), {0},
                   {AggSpec{AggKind::kCountStar, nullptr}});
  std::vector<Row> ref_rows;
  ASSERT_TRUE(cluster->ro(0)->ExecuteColumn(plan, &ref_rows, 1).ok());
  const auto reference = Canonicalize(ref_rows);
  std::atomic<int> errors{0};
  std::atomic<int> mismatches{0};
  std::atomic<bool> stop{false};
  std::thread runner([&] {
    while (!stop.load()) {
      std::vector<Row> out;
      Status s = cluster->proxy()->ExecuteQuery(plan, &out);
      if (!s.ok()) {
        errors.fetch_add(1);
      } else if (Canonicalize(out) != reference) {
        mismatches.fetch_add(1);
      }
    }
  });
  // Let the stream get going, then evict a (likely participating) node.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  RoNode* victim = cluster->ro(2);
  ASSERT_NE(victim, nullptr);
  ASSERT_TRUE(cluster->EvictRoNode(victim).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  stop.store(true);
  runner.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
}

// --- Common-snapshot consistency ----------------------------------------

constexpr TableId kSnap = 9100;
constexpr int kSnapRows = 6000;

std::shared_ptr<const Schema> SnapSchema() {
  std::vector<ColumnDef> cols{{"id", DataType::kInt64, false, true},
                              {"val", DataType::kInt64, false, true}};
  return std::make_shared<Schema>(kSnap, "snap", cols, 0);
}

// A writer bumps every row to generation n in one transaction, over and
// over; distributed group-by-generation counts must always see exactly one
// generation covering the full table — a fragment reading generation n
// while another reads n+1 would split the group. This is the common-
// snapshot protocol's whole job.
TEST_F(DistExecTest, ConcurrentCommitsAllOrNothingAcrossFragments) {
  ClusterOptions opts;
  opts.initial_ro_nodes = 3;
  opts.ro.imci.row_group_size = 256;
  opts.coordinator.min_rows_touched = 0;
  opts.coordinator.rows_per_fragment = 500.0;
  auto cluster = std::make_unique<Cluster>(opts);
  ASSERT_TRUE(cluster->CreateTable(SnapSchema()).ok());
  std::vector<Row> rows;
  rows.reserve(kSnapRows);
  for (int64_t id = 0; id < kSnapRows; ++id) rows.push_back(Row{id, 0});
  ASSERT_TRUE(cluster->BulkLoad(kSnap, std::move(rows)).ok());
  ASSERT_TRUE(cluster->Open().ok());
  for (RoNode* ro : cluster->ro_nodes()) {
    ASSERT_TRUE(ro->CatchUpNow().ok());
    ro->RefreshStats();
  }
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    auto* txns = cluster->rw()->txn_manager();
    int64_t generation = 1;
    while (!stop.load()) {
      Transaction txn;
      txns->Begin(&txn);
      bool ok = true;
      for (int64_t id = 0; id < kSnapRows && ok; ++id) {
        ok = txns->Update(&txn, kSnap, id, Row{id, generation}).ok();
      }
      if (ok && txns->Commit(&txn).ok()) {
        ++generation;
      } else {
        (void)txns->Rollback(&txn);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  auto plan = LAgg(LScan(kSnap, {1}), {0},
                   {AggSpec{AggKind::kCountStar, nullptr}});
  auto* coord = cluster->coordinator();
  int distributed = 0;
  const int iters = testing_util::TestIters(30);
  for (int i = 0; i < iters; ++i) {
    std::vector<Row> out;
    DistQueryStats stats;
    bool attempted = false;
    ASSERT_TRUE(coord->Execute(plan, 0, &out, &attempted, &stats).ok());
    if (!attempted) continue;  // fleet busy; the point needs attempted runs
    ++distributed;
    ASSERT_GE(stats.fragments, 2);
    // Exactly one generation, covering every row.
    ASSERT_EQ(out.size(), 1u) << "torn snapshot: saw "
                              << out.size() << " generations";
    EXPECT_EQ(std::get<int64_t>(out[0][1]), kSnapRows);
  }
  stop.store(true);
  writer.join();
  EXPECT_GT(distributed, iters / 2);
}

// Straggler shedding: one participant's replication reads are slowed to a
// crawl so it cannot cover the common snapshot inside the catch-up budget.
// It must answer Busy, get shed, and the query completes correctly on the
// survivors — with the straggler counter proving the shrink happened.
TEST_F(DistExecTest, StragglerParticipantIsShedNotWaitedFor) {
  ClusterOptions opts;
  opts.initial_ro_nodes = 3;
  opts.ro.imci.row_group_size = 256;
  opts.coordinator.min_rows_touched = 0;
  opts.coordinator.rows_per_fragment = 500.0;
  opts.coordinator.catchup_timeout_us = 20'000;  // shed fast
  auto cluster = std::make_unique<Cluster>(opts);
  ASSERT_TRUE(cluster->CreateTable(SnapSchema()).ok());
  std::vector<Row> rows;
  rows.reserve(kSnapRows);
  for (int64_t id = 0; id < kSnapRows; ++id) rows.push_back(Row{id, 0});
  ASSERT_TRUE(cluster->BulkLoad(kSnap, std::move(rows)).ok());
  ASSERT_TRUE(cluster->Open().ok());
  for (RoNode* ro : cluster->ro_nodes()) {
    ASSERT_TRUE(ro->CatchUpNow().ok());
    ro->RefreshStats();
  }
  // Slow ro3's replication reads only, then land a commit: ro1/ro2 apply it
  // quickly, ro3 lags behind the common snapshot at dispatch time.
  const std::string laggard = cluster->ro(2)->name();
  fault::Policy p;
  p.kind = fault::Kind::kLatency;
  p.latency_us = 200'000;
  p.scope = laggard;
  fault::ScopedFault fault("logstore.read", p);
  {
    auto* txns = cluster->rw()->txn_manager();
    Transaction txn;
    txns->Begin(&txn);
    for (int64_t id = 0; id < kSnapRows; ++id) {
      ASSERT_TRUE(txns->Update(&txn, kSnap, id, Row{id, 1}).ok());
    }
    ASSERT_TRUE(txns->Commit(&txn).ok());
  }
  ASSERT_TRUE(cluster->ro(0)->CatchUpNow().ok());
  ASSERT_TRUE(cluster->ro(1)->CatchUpNow().ok());
  auto plan = LAgg(LScan(kSnap, {1}), {0},
                   {AggSpec{AggKind::kCountStar, nullptr}});
  auto* coord = cluster->coordinator();
  const uint64_t shed_before = coord->stragglers();
  // The laggard may or may not be recruited for any one query; issue a few
  // so at least one fragment lands on it while it is behind.
  bool saw_shed = false;
  for (int i = 0; i < 10 && !saw_shed; ++i) {
    std::vector<Row> out;
    bool attempted = false;
    ASSERT_TRUE(coord->Execute(plan, 0, &out, &attempted).ok());
    if (attempted) {
      ASSERT_EQ(out.size(), 1u);
      EXPECT_EQ(std::get<int64_t>(out[0][0]), 1);  // post-commit generation
      EXPECT_EQ(std::get<int64_t>(out[0][1]), kSnapRows);
    }
    saw_shed = coord->stragglers() > shed_before;
  }
  EXPECT_TRUE(saw_shed) << "laggard was never recruited and shed";
}

}  // namespace
}  // namespace imci
