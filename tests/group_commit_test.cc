// Leader-based group commit (src/log/group_committer.h): durability cost
// must scale with *batch* count, not client count, while preserving the
// invariant Phase#2 replay relies on — commit-VID order equals commit-record
// LSN order. The multi-threaded cases double as the tsan stress surface for
// the rewritten TransactionManager::Commit (short critical section, fsync
// wait outside commit_mu_).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "log/group_committer.h"
#include "redo/redo_record.h"
#include "tests/test_util.h"

namespace imci {
namespace {

// --- GroupCommitter semantics (deterministic, single-threaded) -------------

TEST(GroupCommitterTest, OneFsyncCoversEveryRecordAppendedBeforeIt) {
  PolarFs fs;
  LogStore* log = fs.log("redo");
  Lsn last = 0;
  for (int i = 0; i < 10; ++i) {
    last = log->Append({"r" + std::to_string(i)}, /*durable=*/false);
  }
  EXPECT_EQ(fs.fsync_count(), 0u);
  EXPECT_EQ(log->durable_lsn(), 0u);

  // The leader's batch target is the written tail, so one fsync covers all
  // ten records — not just the one the caller waited on.
  (void)log->SyncTo(5);
  EXPECT_EQ(fs.fsync_count(), 1u);
  EXPECT_EQ(log->durable_lsn(), last);

  // Already covered: the fast path returns without another fsync.
  (void)log->SyncTo(last);
  EXPECT_EQ(fs.fsync_count(), 1u);
  EXPECT_EQ(log->group()->batches(), 1u);
  EXPECT_EQ(log->group()->commits(), 2u);
  EXPECT_DOUBLE_EQ(log->group()->mean_batch_size(), 2.0);
}

TEST(GroupCommitterTest, SingleThreadedDurableAppendsPayOneFsyncEach) {
  PolarFs fs;
  LogStore* log = fs.log("redo");
  for (int i = 0; i < 5; ++i) {
    log->Append({"x"}, /*durable=*/true);
  }
  // No concurrency, no batching: exactly the pre-group-commit cost.
  EXPECT_EQ(fs.fsync_count(), 5u);
  EXPECT_DOUBLE_EQ(log->group()->fsyncs_per_commit(), 1.0);
  EXPECT_EQ(log->durable_lsn(), log->written_lsn());
}

TEST(GroupCommitterTest, RecoveryMarksTheRecoveredTailDurable) {
  PolarFs fs;
  LogStore* log = fs.log("redo");
  const Lsn last = log->Append({"a", "b"}, /*durable=*/true);
  (void)fs.ReopenLogs();
  // Everything recovery re-read from segment files is durable: waiting on
  // the recovered tail must not flush again.
  EXPECT_EQ(log->durable_lsn(), last);
  const uint64_t before = fs.fsync_count();
  (void)log->SyncTo(last);
  EXPECT_EQ(fs.fsync_count(), before);
}

TEST(GroupCommitterTest, PolarFsAggregatesBatchStatsAcrossLogs) {
  PolarFs fs;
  fs.log("redo")->Append({"r"}, /*durable=*/true);
  fs.log("binlog")->Append({"b"}, /*durable=*/true);
  EXPECT_EQ(fs.commit_batches(), 2u);
  EXPECT_EQ(fs.batched_commits(), 2u);
}

// --- Concurrent batching on the real commit path ---------------------------

std::shared_ptr<const Schema> StressSchema() {
  std::vector<ColumnDef> cols;
  cols.push_back({"id", DataType::kInt64, false, true});
  cols.push_back({"v", DataType::kInt64, false, true});
  return std::make_shared<Schema>(1, "t", cols, 0);
}

/// A bare RW commit path: engine + redo + binlog + transaction manager over
/// one PolarFs, no cluster.
struct CommitRig {
  explicit CommitRig(PolarFs::Options fopts = {}, bool binlog_on = false)
      : fs(fopts), engine(&fs, &catalog), redo(fs.log("redo")),
        binlog(fs.log("binlog")), txns(&engine, &redo, &locks, &binlog) {
    EXPECT_TRUE(engine.CreateTable(StressSchema()).ok());
    txns.set_binlog_enabled(binlog_on);
  }
  PolarFs fs;
  Catalog catalog;
  RowStoreEngine engine;
  RedoWriter redo;
  LockManager locks;
  BinlogWriter binlog;
  TransactionManager txns;
};

void CommitLoop(CommitRig* rig, int thread_id, int n) {
  for (int i = 0; i < n; ++i) {
    Transaction txn;
    rig->txns.Begin(&txn);
    const int64_t pk = static_cast<int64_t>(thread_id) * 1'000'000 + i;
    ASSERT_TRUE(rig->txns.Insert(&txn, 1, {pk, int64_t(i)}).ok());
    ASSERT_TRUE(rig->txns.Commit(&txn).ok());
  }
}

TEST(GroupCommitTest, SingleThreadedCommitIsOneFsyncPerCommit) {
  CommitRig rig;
  const uint64_t before = rig.fs.fsync_count();
  CommitLoop(&rig, 0, 16);
  EXPECT_EQ(rig.fs.fsync_count() - before, 16u);
  EXPECT_DOUBLE_EQ(rig.fs.log("redo")->group()->fsyncs_per_commit(), 1.0);
}

TEST(GroupCommitTest, ConcurrentCommitsShareBatchFsyncs) {
  // The simulated fsync latency keeps each flush in flight long enough for
  // other committers to enqueue behind the leader (on any scheduler: the
  // latency wait yields the CPU).
  PolarFs::Options fopts;
  fopts.fsync_latency_us = 200;
  CommitRig rig(fopts);
  const int kThreads = 4;
  const int kPerThread = testing_util::TestIters(50);
  const uint64_t fsyncs_before = rig.fs.fsync_count();
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back(CommitLoop, &rig, t, kPerThread);
  }
  for (auto& w : workers) w.join();
  const uint64_t commits = rig.txns.commits();
  const uint64_t fsyncs = rig.fs.fsync_count() - fsyncs_before;
  ASSERT_EQ(commits, static_cast<uint64_t>(kThreads) * kPerThread);
  // The headline property: at concurrency >= 4 the durable path batches, so
  // fsyncs-per-commit drops below one.
  EXPECT_LT(fsyncs, commits);
  EXPECT_LT(rig.fs.log("redo")->group()->fsyncs_per_commit(), 1.0);
  EXPECT_GT(rig.fs.log("redo")->group()->mean_batch_size(), 1.0);
  // Every commit record is actually durable.
  EXPECT_GE(rig.fs.log("redo")->durable_lsn(), rig.redo.last_lsn());
}

/// Reads every commit record of the shared redo log in LSN order and returns
/// their commit VIDs.
std::vector<Vid> CommitVidsInLsnOrder(PolarFs* fs) {
  RedoReader reader(fs->log("redo"));
  std::vector<RedoRecord> records;
  reader.Read(0, fs->log("redo")->written_lsn(), &records);
  std::vector<Vid> vids;
  for (const RedoRecord& r : records) {
    if (r.type == RedoType::kCommit) vids.push_back(r.commit_vid);
  }
  return vids;
}

TEST(GroupCommitTest, CommitVidOrderEqualsCommitRecordLsnOrder) {
  // The tsan stress for the rewritten commit path: many threads race
  // through the short commit_mu_ section while fsync waits overlap; the
  // replayable log must still show commit VIDs in exactly LSN order (the
  // §5.4 Phase#2 prerequisite), with the binlog arm enabled so both logs'
  // enqueue disciplines are exercised at once.
  PolarFs::Options fopts;
  fopts.fsync_latency_us = 50;
  CommitRig rig(fopts, /*binlog_on=*/true);
  const int kThreads = 8;
  const int kPerThread = testing_util::TestIters(40);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back(CommitLoop, &rig, t, kPerThread);
  }
  for (auto& w : workers) w.join();
  const uint64_t total = static_cast<uint64_t>(kThreads) * kPerThread;

  const std::vector<Vid> vids = CommitVidsInLsnOrder(&rig.fs);
  ASSERT_EQ(vids.size(), total);
  for (size_t i = 0; i < vids.size(); ++i) {
    // Dense and strictly increasing: VID i+1 committed at the (i+1)-th
    // commit-record LSN. Any violation means a replica replaying in LSN
    // order would apply commits out of VID order.
    ASSERT_EQ(vids[i], static_cast<Vid>(i + 1))
        << "commit VID out of LSN order at commit record " << i;
  }

  // The binlog (one record per committed txn, LSN order) must agree.
  std::vector<Vid> binlog_vids;
  const size_t replayed = BinlogWriter::Replay(
      rig.fs.log("binlog"),
      [&](Tid, Vid vid, const std::vector<BinlogWriter::Event>&) {
        binlog_vids.push_back(vid);
      });
  ASSERT_EQ(replayed, total);
  EXPECT_EQ(binlog_vids, vids);

  // Both logs' tails are durable: no commit returned before its fsync.
  EXPECT_GE(rig.fs.log("redo")->durable_lsn(),
            rig.fs.log("redo")->written_lsn());
  EXPECT_GE(rig.fs.log("binlog")->durable_lsn(),
            rig.fs.log("binlog")->written_lsn());
}

}  // namespace
}  // namespace imci
