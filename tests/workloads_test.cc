#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "workloads/production.h"
#include "workloads/sysbench.h"
#include "workloads/tpch.h"

namespace imci {
namespace {

TEST(TpchGenTest, DeterministicAndScaled) {
  tpch::TpchGen gen(0.01);
  auto lineitem1 = gen.Generate(tpch::kLineitem);
  tpch::TpchGen gen2(0.01);
  auto lineitem2 = gen2.Generate(tpch::kLineitem);
  EXPECT_EQ(lineitem1.size(), lineitem2.size());
  EXPECT_EQ(lineitem1[0], lineitem2[0]);
  EXPECT_EQ(lineitem1.back(), lineitem2.back());
  // ~4 lines per order on average.
  EXPECT_GT(lineitem1.size(), gen.num_orders() * 2u);
  EXPECT_LT(lineitem1.size(), gen.num_orders() * 8u);
  // Nation and region are fixed-size per the spec.
  EXPECT_EQ(gen.Generate(tpch::kNation).size(), 25u);
  EXPECT_EQ(gen.Generate(tpch::kRegion).size(), 5u);
}

TEST(TpchGenTest, LineitemDatesDerivedFromOrderDates) {
  tpch::TpchGen gen(0.002);
  auto orders = gen.Generate(tpch::kOrders);
  auto lines = gen.Generate(tpch::kLineitem);
  // Index orders by key.
  std::map<int64_t, int64_t> odate;
  for (auto& o : orders) odate[AsInt(o[0])] = AsInt(o[4]);
  for (size_t i = 0; i < lines.size(); i += 97) {
    const int64_t okey = AsInt(lines[i][1]);
    const int64_t ship = AsInt(lines[i][11]);
    ASSERT_TRUE(odate.count(okey));
    EXPECT_GT(ship, odate[okey]);
    EXPECT_LE(ship, odate[okey] + 122);
  }
}

TEST(SysbenchTest, InsertOnlyGeneratesFreshKeys) {
  ClusterOptions opts;
  auto cluster = std::make_unique<Cluster>(opts);
  sysbench::Sysbench sb(4, 100, sysbench::Pattern::kInsertOnly);
  for (auto& schema : sb.Schemas()) {
    ASSERT_TRUE(cluster->CreateTable(schema).ok());
  }
  for (int t = 0; t < 4; ++t) {
    ASSERT_TRUE(
        cluster->BulkLoad(sysbench::Sysbench::kBaseTableId + t,
                          sb.Generate(t)).ok());
  }
  ASSERT_TRUE(cluster->Open().ok());
  auto* txns = cluster->rw()->txn_manager();
  Rng rng(1);
  Zipf zipf(100, 0.99, 1);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(sb.RunOp(txns, 0, &rng, &zipf).ok());
  }
  ASSERT_TRUE(cluster->ro(0)->CatchUpNow().ok());
  uint64_t total = 0;
  for (int t = 0; t < 4; ++t) {
    total += cluster->rw()
                 ->engine()
                 ->GetTable(sysbench::Sysbench::kBaseTableId + t)
                 ->row_count();
  }
  EXPECT_EQ(total, 4 * 100 + 200u);
}

TEST(SysbenchTest, WriteOnlyUpdatesExistingRows) {
  ClusterOptions opts;
  auto cluster = std::make_unique<Cluster>(opts);
  sysbench::Sysbench sb(2, 500, sysbench::Pattern::kWriteOnly);
  for (auto& schema : sb.Schemas()) {
    ASSERT_TRUE(cluster->CreateTable(schema).ok());
  }
  for (int t = 0; t < 2; ++t) {
    ASSERT_TRUE(cluster->BulkLoad(sysbench::Sysbench::kBaseTableId + t,
                                  sb.Generate(t)).ok());
  }
  ASSERT_TRUE(cluster->Open().ok());
  auto* txns = cluster->rw()->txn_manager();
  Rng rng(2);
  Zipf zipf(500, 0.99, 2);
  int ok = 0;
  for (int i = 0; i < 300; ++i) {
    if (sb.RunOp(txns, 0, &rng, &zipf).ok()) ok++;
  }
  EXPECT_EQ(ok, 300);
  // Row count unchanged: pure updates.
  EXPECT_EQ(cluster->rw()
                ->engine()
                ->GetTable(sysbench::Sysbench::kBaseTableId)
                ->row_count(),
            500u);
  ASSERT_TRUE(cluster->ro(0)->CatchUpNow().ok());
  EXPECT_EQ(cluster->ro(0)
                ->imci()
                ->GetIndex(sysbench::Sysbench::kBaseTableId)
                ->visible_rows(cluster->ro(0)->applied_vid()),
            500u);
}

class ProductionTest : public ::testing::TestWithParam<int> {};

TEST_P(ProductionTest, CustomerQueriesAgreeAcrossEngines) {
  auto profiles = production::Profiles(/*scale=*/0.02);
  const auto& profile = profiles[GetParam()];
  production::CustomerWorkload workload(profile);
  ClusterOptions opts;
  opts.ro.imci.row_group_size = 2048;
  auto cluster = std::make_unique<Cluster>(opts);
  auto schemas = workload.Schemas();
  for (auto& schema : schemas) {
    ASSERT_TRUE(cluster->CreateTable(schema).ok());
  }
  for (auto& schema : schemas) {
    ASSERT_TRUE(cluster->BulkLoad(schema->table_id(),
                                  workload.Generate(schema->table_id()))
                    .ok());
  }
  ASSERT_TRUE(cluster->Open().ok());
  RoNode* ro = cluster->ro(0);
  ASSERT_TRUE(ro->CatchUpNow().ok());
  ro->RefreshStats();
  for (int q = 0; q < production::CustomerWorkload::kQueriesPerCustomer;
       ++q) {
    std::vector<Row> col_rows, row_rows;
    auto col = [&](const LogicalRef& p, std::vector<Row>* out) {
      return ro->ExecuteColumn(p, out);
    };
    auto row = [&](const LogicalRef& p, std::vector<Row>* out) {
      return ro->ExecuteRow(p, out);
    };
    ASSERT_TRUE(
        workload.RunQuery(q, *cluster->catalog(), col, &col_rows).ok())
        << profile.name << " Q" << q;
    ASSERT_TRUE(
        workload.RunQuery(q, *cluster->catalog(), row, &row_rows).ok())
        << profile.name << " Q" << q;
    EXPECT_EQ(testing_util::Canonicalize(col_rows),
              testing_util::Canonicalize(row_rows))
        << profile.name << " Q" << q;
  }
}

INSTANTIATE_TEST_SUITE_P(AllCustomers, ProductionTest,
                         ::testing::Range(0, 4));

}  // namespace
}  // namespace imci
