// Randomized fault storm: EVERY instrumented storage seam armed at once with
// seeded low-probability policies — IO failures on the fallible paths, torn
// writes on the log append path (the one seam whose recovery handles tears),
// latency spikes on the read paths — while a concurrent insert-only workload
// hammers the RW commit path. No single-seam test can exercise the
// *interactions*: a torn append under a poisoned fsync, a refused commit
// record racing a retried one, a latency spike widening a group-commit batch
// that then fails.
//
// The oracle stays simple under all of it: each thread inserts strictly
// sequential pks in its own range and never advances past a pk until its
// commit is acknowledged, so per-thread pk order equals commit-LSN order.
// After the storm the node "reboots" (ReopenLogs runs torn-tail detection and
// trims to the good prefix — the in-memory analogue of crash recovery), and
// the recovered state per thread must be an exact contiguous prefix of that
// thread's acknowledged sequence: torn-below-durable records may shorten the
// prefix (an acknowledged commit can be lost to a tear — that is what tears
// do), but a gap, a reordering, a value mismatch, or a never-acknowledged row
// is a bug in some seam's failure handling.
//
// Seeded via IMCI_TEST_SEED (the nightly job randomizes and echoes it); a
// failure replays bit-for-bit with the same seed.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "log/log_store.h"
#include "tests/test_util.h"

namespace imci {
namespace {

std::shared_ptr<const Schema> StormSchema() {
  std::vector<ColumnDef> cols;
  cols.push_back({"id", DataType::kInt64, false, true});
  cols.push_back({"v", DataType::kInt64, false, true});
  return std::make_shared<Schema>(1, "storm", cols, 0);
}

class FaultStormTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::Registry::Instance().Reset(); }
};

TEST_F(FaultStormTest, RecoveredStateIsPerThreadAckedPrefixUnderFullStorm) {
  const uint64_t seed = testing_util::TestSeed(7777);
  const int per_thread = testing_util::TestIters(120);
  SCOPED_TRACE(::testing::Message() << "IMCI_TEST_SEED=" << seed
                                    << " IMCI_TEST_ITERS=" << per_thread
                                    << " reproduces this storm");

  PolarFs fs;
  Catalog catalog;
  RwNode rw(&fs, &catalog);
  ASSERT_TRUE(rw.CreateTable(StormSchema()).ok());
  std::vector<Row> base;
  for (int64_t pk = 0; pk < 20; ++pk) base.push_back({pk, pk});
  ASSERT_TRUE(rw.BulkLoad(1, base).ok());
  ASSERT_TRUE(rw.FinishLoad().ok());

  auto& reg = fault::Registry::Instance();
  reg.Reseed(seed);
  auto arm = [&](const char* point, fault::Kind kind, double probability,
                 uint32_t latency_us = 0) {
    fault::Policy p;
    p.kind = kind;
    p.probability = probability;
    p.latency_us = latency_us;
    p.keep_fraction = 0.5;
    reg.Arm(point, p);
  };
  // Every seam at once. Tears only where recovery detects them (the log
  // append path — checksummed, torn-tail trimmed); kFail elsewhere on the
  // write side (a silently torn page would be indistinguishable from data
  // corruption, which is not this storm's oracle); latency on the read side.
  arm("polarfs.fsync", fault::Kind::kFail, 0.004);
  arm("polarfs.fsync.control", fault::Kind::kFail, 0.01);
  arm("polarfs.append_file", fault::Kind::kTorn, 0.004);
  arm("logstore.append", fault::Kind::kFail, 0.008);
  arm("logstore.truncate", fault::Kind::kFail, 0.01);
  arm("logstore.recover", fault::Kind::kFail, 0.01);
  arm("polarfs.write_page", fault::Kind::kFail, 0.01);
  arm("polarfs.write_file", fault::Kind::kFail, 0.01);
  arm("polarfs.read_page", fault::Kind::kLatency, 0.01, /*latency_us=*/100);
  arm("polarfs.read_file", fault::Kind::kLatency, 0.01, /*latency_us=*/100);
  arm("logstore.read", fault::Kind::kLatency, 0.02, /*latency_us=*/100);

  constexpr int kThreads = 3;
  constexpr int64_t kRange = 10'000;  // per-thread pk stride
  auto* txns = rw.txn_manager();
  std::vector<int> acked(kThreads, 0);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      int consecutive_failures = 0;
      for (int i = 0; i < per_thread;) {
        Transaction txn;
        txns->Begin(&txn);
        const int64_t pk = (t + 1) * kRange + i;
        Status s = txns->Insert(&txn, 1, {pk, int64_t(i)});
        if (s.ok()) s = txns->Commit(&txn);
        else (void)txns->Rollback(&txn);
        if (s.ok()) {
          // Only an acknowledged commit advances the sequence: pk order ==
          // commit-LSN order, the property the prefix oracle needs.
          acked[t] = ++i;
          consecutive_failures = 0;
          continue;
        }
        // Refused append, failed batch fsync, poisoned log — retry the SAME
        // pk. A storm that killed the node for good (poison with no reboot
        // in sight) ends this thread's run; the oracle handles any prefix.
        if (++consecutive_failures > 5) break;
      }
    });
  }
  for (auto& w : workers) w.join();

  // The storm must have actually fired somewhere on the commit path; a
  // completely clean run at these probabilities and volumes means the seams
  // stopped being consulted.
  const uint64_t commit_path_fires = reg.fires("polarfs.fsync") +
                                     reg.fires("logstore.append") +
                                     reg.fires("polarfs.append_file");
  EXPECT_GE(commit_path_fires, 1u)
      << "storm never fired: seed=" << seed
      << " append_hits=" << reg.hits("logstore.append");

  // Reboot: disarm everything, then recover — torn-tail detection trims the
  // log to its good prefix and the poison latch (if any) clears.
  reg.Reset();
  ASSERT_TRUE(fs.ReopenLogs().ok());

  RoNodeOptions ro_opts;
  RoNode node("post-storm", &fs, &catalog, ro_opts);
  ASSERT_TRUE(node.Boot().ok());
  ASSERT_TRUE(node.CatchUpNow().ok());

  std::vector<Row> got;
  ASSERT_TRUE(node.ExecuteColumn(LScan(1, {0, 1}), &got).ok());
  // Per-thread prefix oracle over the recovered rows.
  std::vector<std::vector<int64_t>> recovered(kThreads);
  std::vector<Row> recovered_base;
  for (const Row& r : got) {
    const int64_t pk = AsInt(r[0]);
    if (pk < kRange) {
      recovered_base.push_back(r);
      continue;
    }
    const int t = static_cast<int>(pk / kRange) - 1;
    ASSERT_GE(t, 0);
    ASSERT_LT(t, kThreads);
    // Values survive verbatim (v == the per-thread sequence number).
    EXPECT_EQ(AsInt(r[1]), pk - (t + 1) * kRange);
    recovered[t].push_back(pk);
  }
  EXPECT_EQ(testing_util::Canonicalize(recovered_base),
            testing_util::Canonicalize(base));
  for (int t = 0; t < kThreads; ++t) {
    std::sort(recovered[t].begin(), recovered[t].end());
    SCOPED_TRACE(::testing::Message()
                 << "thread=" << t << " acked=" << acked[t]
                 << " recovered=" << recovered[t].size());
    // Contiguous from the range base: gap-free, reorder-free.
    for (size_t j = 0; j < recovered[t].size(); ++j) {
      ASSERT_EQ(recovered[t][j], (t + 1) * kRange + static_cast<int64_t>(j));
    }
    // Never more than was acknowledged (a never-acked row surfacing means a
    // refused commit leaked); possibly fewer (torn-below-durable loss).
    EXPECT_LE(recovered[t].size(), static_cast<size_t>(acked[t]));
  }

  // Row-replica arm: after the boot-time undo pass both engines agree on the
  // same recovered state.
  (void)node.RecoverRowReplica();
  RowTable* replica = node.engine()->GetTable(1);
  ASSERT_NE(replica, nullptr);
  std::vector<Row> raw;
  ASSERT_TRUE(replica->Scan([&](int64_t, const Row& r) {
    raw.push_back(r);
    return true;
  }).ok());
  EXPECT_EQ(testing_util::Canonicalize(raw), testing_util::Canonicalize(got));
}

}  // namespace
}  // namespace imci
