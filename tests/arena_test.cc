// Unit tests for the MVCC arena substrate (common/arena.h): chunked
// bump-pointer allocation, epoch seal/drop bookkeeping, and the
// reader-grace reclamation protocol the latch-free snapshot readers rely
// on. The concurrent suites live in mvcc_arena_stress_test.cc.

#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/arena.h"
#include "rowstore/mvcc.h"

namespace imci {
namespace {

TEST(MvccArenaTest, AllocationsAreAlignedAndBumpWithinChunk) {
  VersionArena arena(1024);
  const VersionArena::Stats before = arena.stats();
  EXPECT_EQ(before.chunks_live, 0u);
  std::vector<void*> ptrs;
  for (size_t bytes : {1u, 7u, 8u, 13u, 64u, 100u}) {
    void* p = arena.Allocate(bytes);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 8, 0u) << bytes;
    std::memset(p, 0xAB, bytes);  // asan: the full span must be writable
    ptrs.push_back(p);
  }
  // All small allocations fit one chunk; addresses strictly increase.
  const VersionArena::Stats after = arena.stats();
  EXPECT_EQ(after.chunks_live, 1u);
  EXPECT_EQ(after.allocations, before.allocations + 6);
  for (size_t i = 1; i < ptrs.size(); ++i) EXPECT_LT(ptrs[i - 1], ptrs[i]);
}

TEST(MvccArenaTest, ChunkGrowthAndOversizedAllocations) {
  VersionArena arena(256);
  arena.Allocate(200);
  EXPECT_EQ(arena.stats().chunks_live, 1u);
  arena.Allocate(200);  // does not fit the 256-byte chunk remainder
  EXPECT_EQ(arena.stats().chunks_live, 2u);
  // An allocation larger than the chunk size gets a dedicated chunk.
  void* big = arena.Allocate(4096);
  ASSERT_NE(big, nullptr);
  std::memset(big, 0xCD, 4096);
  EXPECT_EQ(arena.stats().chunks_live, 3u);
  EXPECT_GE(arena.stats().bytes_live, 256u + 256u + 4096u);
}

TEST(MvccArenaTest, SealAdvancesEpochAndEmptySealIsNoop) {
  VersionArena arena(256);
  const uint32_t e0 = arena.current_epoch();
  arena.SealEpoch();  // nothing allocated: no-op
  EXPECT_EQ(arena.current_epoch(), e0);
  arena.Allocate(8);
  arena.SealEpoch();
  EXPECT_EQ(arena.current_epoch(), e0 + 1);
  arena.Allocate(8);
  arena.SealEpoch();
  EXPECT_EQ(arena.current_epoch(), e0 + 2);
}

TEST(MvccArenaTest, DroppableEpochsFollowStampedWatermark) {
  VersionArena arena(256);
  arena.Allocate(8);
  arena.NoteStamp(arena.current_epoch(), 5);
  arena.SealEpoch();  // epoch A: max vid 5
  arena.Allocate(8);
  const uint32_t b = arena.current_epoch();
  arena.NoteStamp(b, 9);
  arena.SealEpoch();  // epoch B: max vid 9
  // A node allocated in a sealed epoch can be stamped later (in-flight at
  // seal time); the bound must follow it.
  arena.NoteStamp(b, 12);
  EXPECT_TRUE(arena.DroppableEpochs(4).empty());
  EXPECT_EQ(arena.DroppableEpochs(5).size(), 1u);
  EXPECT_EQ(arena.DroppableEpochs(11).size(), 1u);
  EXPECT_EQ(arena.DroppableEpochs(12).size(), 2u);
}

TEST(MvccArenaTest, DropEpochsRetiresToGraceThenCollects) {
  VersionArena arena(256);
  arena.Allocate(8);
  arena.NoteStamp(arena.current_epoch(), 1);
  arena.SealEpoch();
  const std::vector<uint32_t> droppable = arena.DroppableEpochs(1);
  ASSERT_EQ(droppable.size(), 1u);
  EXPECT_EQ(arena.DropEpochs(droppable), 1u);
  const VersionArena::Stats mid = arena.stats();
  EXPECT_EQ(mid.epochs_dropped, 1u);
  EXPECT_EQ(mid.bytes_live, 0u);
  EXPECT_EQ(mid.bytes_pending, 256u);  // retired, not yet freed
  EXPECT_EQ(mid.bytes_retired, 0u);
  // No reader section predates the retire: the grace passes immediately.
  EXPECT_EQ(arena.CollectGarbage(), 1u);
  const VersionArena::Stats after = arena.stats();
  EXPECT_EQ(after.bytes_pending, 0u);
  EXPECT_EQ(after.bytes_retired, 256u);
  EXPECT_EQ(after.chunks_live, 0u);
}

TEST(MvccArenaTest, ReadGuardOpenBeforeRetireBlocksCollection) {
  VersionArena arena(256);
  void* p = arena.Allocate(16);
  std::memset(p, 0x5A, 16);
  arena.NoteStamp(arena.current_epoch(), 1);
  arena.SealEpoch();
  {
    ArenaReadGuard guard;  // entered before the retire: pins the memory
    arena.DropEpochs(arena.DroppableEpochs(1));
    EXPECT_EQ(arena.CollectGarbage(), 0u);
    EXPECT_EQ(arena.stats().bytes_pending, 256u);
    // The retired-but-not-freed span is still readable.
    EXPECT_EQ(static_cast<unsigned char*>(p)[15], 0x5Au);
  }
  EXPECT_EQ(arena.CollectGarbage(), 1u);
  EXPECT_EQ(arena.stats().bytes_pending, 0u);
}

TEST(MvccArenaTest, ReadGuardOpenedAfterRetireDoesNotBlock) {
  VersionArena arena(256);
  arena.Allocate(16);
  arena.NoteStamp(arena.current_epoch(), 1);
  arena.SealEpoch();
  arena.DropEpochs(arena.DroppableEpochs(1));
  // A guard entered *after* the retire cannot reach the garbage (its entry
  // pointers come from the post-unlink structure), so it must not pin it.
  ArenaReadGuard guard;
  EXPECT_EQ(arena.CollectGarbage(), 1u);
}

TEST(MvccArenaTest, NestedGuardsKeepOutermostPin) {
  VersionArena arena(256);
  arena.Allocate(16);
  arena.NoteStamp(arena.current_epoch(), 1);
  arena.SealEpoch();
  ArenaReadGuard outer;
  {
    ArenaReadGuard inner;
    arena.DropEpochs(arena.DroppableEpochs(1));
    EXPECT_EQ(arena.CollectGarbage(), 0u);
  }
  // Inner guard closed; the outermost section still pins the grace list.
  EXPECT_EQ(arena.CollectGarbage(), 0u);
}

TEST(MvccArenaTest, GuardFromAnotherThreadBlocksUntilItCloses) {
  VersionArena arena(256);
  arena.Allocate(16);
  arena.NoteStamp(arena.current_epoch(), 1);
  arena.SealEpoch();
  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
  std::thread reader([&] {
    ArenaReadGuard guard;
    entered.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!entered.load()) std::this_thread::yield();
  arena.DropEpochs(arena.DroppableEpochs(1));
  EXPECT_EQ(arena.CollectGarbage(), 0u);
  release.store(true);
  reader.join();
  EXPECT_EQ(arena.CollectGarbage(), 1u);
}

// The incremental stats satellite: exact counters with no O(chains) walks.
TEST(MvccArenaTest, VersionChainStatsAreExactAndIncremental) {
  VersionChains chains;
  const std::string base = "base";
  for (int i = 0; i < 4; ++i) {
    chains.Install(1, /*writer=*/7, false, "img-a" + std::to_string(i),
                   i == 0 ? &base : nullptr);
    chains.Stamp(7, static_cast<Vid>(i + 1), {1}, /*trim_below=*/0);
  }
  chains.Install(2, /*writer=*/8, false, "img-b", &base);
  chains.Stamp(8, 9, {2}, 0);
  MvccStats s = chains.Stats();
  EXPECT_EQ(s.chains, 2u);
  EXPECT_EQ(s.versions, 5u + 2u);  // pk1: base + 4, pk2: base + 1
  EXPECT_EQ(s.max_chain_length, 5u);
  EXPECT_EQ(chains.MaxChainLength(), 5u);
  EXPECT_EQ(chains.ChainLength(1), 5u);
  EXPECT_EQ(chains.ChainLength(2), 2u);
  EXPECT_GT(s.arena_bytes_live, 0u);

  // Prune to the newest VID: every chain collapses to its tree image and
  // the whole arena history is epoch-dropped.
  const size_t dropped = chains.Prune(9);
  EXPECT_EQ(dropped, 7u);
  s = chains.Stats();
  EXPECT_EQ(s.chains, 0u);
  EXPECT_EQ(s.versions, 0u);
  EXPECT_EQ(s.max_chain_length, 0u);
  EXPECT_EQ(chains.MaxChainLength(), 0u);
  EXPECT_GE(s.epochs_dropped, 1u);
  EXPECT_EQ(s.versions_dropped, 7u);
  EXPECT_EQ(s.versions_installed, 7u);
}

TEST(MvccArenaTest, SameWriterCollapseKeepsOneInflightNode) {
  VersionChains chains;
  const std::string base = "base";
  chains.Install(1, 5, false, "first", &base);
  chains.Install(1, 5, false, "second", nullptr);
  chains.Install(1, 5, false, "third", nullptr);
  EXPECT_EQ(chains.ChainLength(1), 2u);  // base + one in-flight
  chains.Stamp(5, 3, {1}, 0);
  const RowVersion* v = nullptr;
  ASSERT_TRUE(chains.Resolve(1, 3, &v));
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->vid(), 3u);
  EXPECT_EQ(v->image(), "third");
  ASSERT_NE(v->next(), nullptr);
  EXPECT_EQ(v->next()->image(), "base");
}

TEST(MvccArenaTest, PruneRelocatesSurvivorsOutOfDroppedEpochs) {
  VersionChains chains;
  const std::string base = "pinned-base";
  chains.Install(1, 5, false, "after", &base);
  chains.Stamp(5, 2, {1}, 0);
  // Seal the epoch holding both nodes, then commit more history in later
  // epochs so the first epoch's chunks go cold.
  chains.Prune(0);  // no trim (watermark 0), but seals the epoch
  chains.Install(2, 6, false, "other", &base);
  chains.Stamp(6, 3, {2}, 0);
  // Watermark 5: pk2's chain collapses; pk1's chain would too, but keep it
  // alive with an in-flight writer so its nodes must be *relocated* when
  // their epoch drops.
  chains.Install(1, 9, false, "wip", nullptr);
  const MvccStats before = chains.Stats();
  chains.Prune(5);
  const MvccStats after = chains.Stats();
  EXPECT_GT(after.epochs_dropped, before.epochs_dropped);
  EXPECT_GT(after.relocations, before.relocations);
  // The relocated copies answer reads exactly like the originals.
  const RowVersion* v = nullptr;
  ASSERT_TRUE(chains.Resolve(1, 4, &v));
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->vid(), 2u);
  EXPECT_EQ(v->image(), "after");
  chains.Stamp(9, 7, {1}, 0);
  ASSERT_TRUE(chains.Resolve(1, 7, &v));
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->image(), "wip");
}

}  // namespace
}  // namespace imci
