#include <gtest/gtest.h>

#include <chrono>

#include "log/log_store.h"
#include "polarfs/polarfs.h"

namespace imci {
namespace {

TEST(PolarFsTest, PageStore) {
  PolarFs fs;
  EXPECT_FALSE(fs.HasPage(7));
  ASSERT_TRUE(fs.WritePage(7, "image7").ok());
  EXPECT_TRUE(fs.HasPage(7));
  std::string img;
  ASSERT_TRUE(fs.ReadPage(7, &img).ok());
  EXPECT_EQ(img, "image7");
  EXPECT_TRUE(fs.ReadPage(8, &img).IsNotFound());
  EXPECT_EQ(fs.page_writes(), 1u);
  EXPECT_GE(fs.page_reads(), 2u);
}

TEST(PolarFsTest, FileStoreWithPrefixListing) {
  PolarFs fs;
  ASSERT_TRUE(fs.WriteFile("ckpt/1/a", "A").ok());
  ASSERT_TRUE(fs.WriteFile("ckpt/1/b", "B").ok());
  ASSERT_TRUE(fs.WriteFile("other", "O").ok());
  auto files = fs.ListFiles("ckpt/");
  EXPECT_EQ(files.size(), 2u);
  std::string data;
  ASSERT_TRUE(fs.ReadFile("ckpt/1/a", &data).ok());
  EXPECT_EQ(data, "A");
  ASSERT_TRUE(fs.DeleteFile("ckpt/1/a").ok());
  EXPECT_TRUE(fs.ReadFile("ckpt/1/a", &data).IsNotFound());
}

TEST(PolarFsTest, AppendFileCreatesAndExtends) {
  PolarFs fs;
  ASSERT_TRUE(fs.AppendFile("seg", "abc").ok());
  ASSERT_TRUE(fs.AppendFile("seg", "def").ok());
  std::string data;
  ASSERT_TRUE(fs.ReadFile("seg", &data).ok());
  EXPECT_EQ(data, "abcdef");
}

TEST(PolarFsTest, LogDirectoryReturnsSharedInstancePerName) {
  PolarFs fs;
  LogStore* redo = fs.log("redo");
  ASSERT_NE(redo, nullptr);
  // The same name is the same shared log — what carries the CALS broadcast
  // between nodes attached to this filesystem.
  EXPECT_EQ(redo, fs.log("redo"));
  EXPECT_NE(redo, fs.log("binlog"));
  redo->Append({"a"}, false);
  EXPECT_EQ(fs.log("redo")->written_lsn(), 1u);
  EXPECT_EQ(fs.log("binlog")->written_lsn(), 0u);
}

TEST(PolarFsTest, DurableAppendsAccountFsyncs) {
  PolarFs fs;
  fs.log("redo")->Append({"x"}, /*durable=*/false);
  EXPECT_EQ(fs.fsync_count(), 0u);
  fs.log("redo")->Append({"y"}, /*durable=*/true);
  EXPECT_EQ(fs.fsync_count(), 1u);
  (void)fs.log("redo")->Sync();
  EXPECT_EQ(fs.fsync_count(), 2u);
  EXPECT_GE(fs.log_bytes(), 2u);
}

TEST(PolarFsTest, SimulatedFsyncLatency) {
  PolarFs::Options opt;
  opt.fsync_latency_us = 2000;
  PolarFs fs(opt);
  auto t0 = std::chrono::steady_clock::now();
  fs.log("redo")->Append({"x"}, true);
  auto dt = std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - t0)
                .count();
  EXPECT_GE(dt, 1500);
}

TEST(PolarFsTest, ReopenLogsRecoversFromSegmentFiles) {
  PolarFs fs;
  LogStore* lg = fs.log("redo");
  lg->Append({"a", "b", "c"}, true);
  // Simulated restart: in-memory state is rebuilt from the segment files,
  // and the handle stays valid.
  (void)fs.ReopenLogs();
  EXPECT_EQ(lg->written_lsn(), 3u);
  std::vector<std::string> out;
  EXPECT_EQ(lg->Read(0, 10, &out), 3u);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[2], "c");
}

}  // namespace
}  // namespace imci
