#include <gtest/gtest.h>

#include <thread>

#include "polarfs/polarfs.h"

namespace imci {
namespace {

TEST(PolarFsTest, LogAppendAndRead) {
  PolarFs fs;
  EXPECT_EQ(fs.written_lsn(), 0u);
  Lsn last = fs.AppendLog({"a", "b", "c"}, /*durable=*/true);
  EXPECT_EQ(last, 3u);
  EXPECT_EQ(fs.written_lsn(), 3u);
  EXPECT_EQ(fs.fsync_count(), 1u);
  std::vector<std::string> out;
  Lsn read = fs.ReadLog(0, 10, &out);
  EXPECT_EQ(read, 3u);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], "a");
  EXPECT_EQ(out[2], "c");
  // Partial range (from exclusive, to inclusive).
  out.clear();
  fs.ReadLog(1, 2, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], "b");
}

TEST(PolarFsTest, NonDurableAppendSkipsFsync) {
  PolarFs fs;
  fs.AppendLog({"x"}, /*durable=*/false);
  EXPECT_EQ(fs.fsync_count(), 0u);
  fs.SyncLog();
  EXPECT_EQ(fs.fsync_count(), 1u);
}

TEST(PolarFsTest, WaitForLogWakesOnAppend) {
  PolarFs fs;
  std::thread appender([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    fs.AppendLog({"hello"}, false);
  });
  Lsn got = fs.WaitForLog(0, 2'000'000);
  EXPECT_GE(got, 1u);
  appender.join();
}

TEST(PolarFsTest, WaitForLogTimesOut) {
  PolarFs fs;
  Lsn got = fs.WaitForLog(5, 20'000);
  EXPECT_EQ(got, 0u);
}

TEST(PolarFsTest, TruncatePrefixHidesOldRecords) {
  PolarFs fs;
  fs.AppendLog({"a", "b", "c", "d"}, false);
  fs.TruncateLogPrefix(2);
  std::vector<std::string> out;
  fs.ReadLog(0, 10, &out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], "c");
  // LSNs keep counting after truncation.
  EXPECT_EQ(fs.AppendLog({"e"}, false), 5u);
}

TEST(PolarFsTest, PageStore) {
  PolarFs fs;
  EXPECT_FALSE(fs.HasPage(7));
  ASSERT_TRUE(fs.WritePage(7, "image7").ok());
  EXPECT_TRUE(fs.HasPage(7));
  std::string img;
  ASSERT_TRUE(fs.ReadPage(7, &img).ok());
  EXPECT_EQ(img, "image7");
  EXPECT_TRUE(fs.ReadPage(8, &img).IsNotFound());
  EXPECT_EQ(fs.page_writes(), 1u);
  EXPECT_GE(fs.page_reads(), 2u);
}

TEST(PolarFsTest, FileStoreWithPrefixListing) {
  PolarFs fs;
  ASSERT_TRUE(fs.WriteFile("ckpt/1/a", "A").ok());
  ASSERT_TRUE(fs.WriteFile("ckpt/1/b", "B").ok());
  ASSERT_TRUE(fs.WriteFile("other", "O").ok());
  auto files = fs.ListFiles("ckpt/");
  EXPECT_EQ(files.size(), 2u);
  std::string data;
  ASSERT_TRUE(fs.ReadFile("ckpt/1/a", &data).ok());
  EXPECT_EQ(data, "A");
  ASSERT_TRUE(fs.DeleteFile("ckpt/1/a").ok());
  EXPECT_TRUE(fs.ReadFile("ckpt/1/a", &data).IsNotFound());
}

TEST(PolarFsTest, ConcurrentAppendsAssignDenseLsns) {
  PolarFs fs;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 100; ++i) fs.AppendLog({"r"}, false);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(fs.written_lsn(), 800u);
  std::vector<std::string> out;
  EXPECT_EQ(fs.ReadLog(0, 10000, &out), 800u);
  EXPECT_EQ(out.size(), 800u);
}

TEST(PolarFsTest, SimulatedFsyncLatency) {
  PolarFs::Options opt;
  opt.fsync_latency_us = 2000;
  PolarFs fs(opt);
  auto t0 = std::chrono::steady_clock::now();
  fs.AppendLog({"x"}, true);
  auto dt = std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - t0)
                .count();
  EXPECT_GE(dt, 1500);
}

}  // namespace
}  // namespace imci
