#include <gtest/gtest.h>

#include "exec/expr.h"
#include "exec/operators.h"

namespace imci {
namespace {

Batch MakeBatch(std::vector<std::vector<Value>> rows,
                std::vector<DataType> types) {
  Batch b = Batch::Make(types);
  for (auto& r : rows) {
    for (size_t c = 0; c < r.size(); ++c) b.cols[c].AppendValue(r[c]);
    b.rows++;
  }
  return b;
}

TEST(ExprTest, ComparisonKernels) {
  Batch b = MakeBatch({{int64_t(1), int64_t(5)},
                       {int64_t(5), int64_t(5)},
                       {int64_t(9), int64_t(5)}},
                      {DataType::kInt64, DataType::kInt64});
  ColumnVector out;
  ASSERT_TRUE(Lt(Col(0, DataType::kInt64), Col(1, DataType::kInt64))
                  ->Eval(b, &out).ok());
  EXPECT_EQ(out.ints, (std::vector<int64_t>{1, 0, 0}));
  ASSERT_TRUE(Ge(Col(0, DataType::kInt64), Col(1, DataType::kInt64))
                  ->Eval(b, &out).ok());
  EXPECT_EQ(out.ints, (std::vector<int64_t>{0, 1, 1}));
  ASSERT_TRUE(Eq(Col(0, DataType::kInt64), ConstInt(5))->Eval(b, &out).ok());
  EXPECT_EQ(out.ints, (std::vector<int64_t>{0, 1, 0}));
}

TEST(ExprTest, NullPropagationThreeValuedLogic) {
  Batch b = MakeBatch({{Value{}, int64_t(1)}, {int64_t(2), Value{}}},
                      {DataType::kInt64, DataType::kInt64});
  ColumnVector out;
  // NULL < 1 -> NULL; filter mask treats it as false.
  std::vector<uint8_t> mask;
  auto pred = Lt(Col(0, DataType::kInt64), Col(1, DataType::kInt64));
  ASSERT_TRUE(pred->EvalMask(b, &mask).ok());
  EXPECT_EQ(mask, (std::vector<uint8_t>{0, 0}));
  // (x IS NULL) OR (y IS NULL) is true for both.
  auto isnull = Or(IsNull(Col(0, DataType::kInt64)),
                   IsNull(Col(1, DataType::kInt64)));
  ASSERT_TRUE(isnull->EvalMask(b, &mask).ok());
  EXPECT_EQ(mask, (std::vector<uint8_t>{1, 1}));
  // AND short-circuit semantics: (false AND NULL) == false, not NULL.
  Batch b2 = MakeBatch({{int64_t(0), Value{}}},
                       {DataType::kInt64, DataType::kInt64});
  auto and_expr = And(Gt(Col(0, DataType::kInt64), ConstInt(5)),
                      Gt(Col(1, DataType::kInt64), ConstInt(0)));
  ColumnVector v;
  ASSERT_TRUE(and_expr->Eval(b2, &v).ok());
  EXPECT_EQ(v.nulls[0], 0);
  EXPECT_EQ(v.ints[0], 0);
}

TEST(ExprTest, ArithmeticTypePromotion) {
  Batch b = MakeBatch({{int64_t(3), 2.5}}, {DataType::kInt64,
                                            DataType::kDouble});
  ColumnVector out;
  ASSERT_TRUE(Add(Col(0, DataType::kInt64), Col(1, DataType::kDouble))
                  ->Eval(b, &out).ok());
  EXPECT_EQ(out.type, DataType::kDouble);
  EXPECT_DOUBLE_EQ(out.dbls[0], 5.5);
  // Pure integer arithmetic stays integral.
  ASSERT_TRUE(Mul(Col(0, DataType::kInt64), ConstInt(4))->Eval(b, &out).ok());
  EXPECT_EQ(out.type, DataType::kInt64);
  EXPECT_EQ(out.ints[0], 12);
  // Division by zero yields NULL, not a crash.
  ASSERT_TRUE(Div(Col(1, DataType::kDouble), ConstDouble(0.0))
                  ->Eval(b, &out).ok());
  EXPECT_EQ(out.nulls[0], 1);
}

TEST(ExprTest, LikeMatcher) {
  EXPECT_TRUE(Expr::LikeMatch("PROMO BRUSHED TIN", "PROMO%"));
  EXPECT_TRUE(Expr::LikeMatch("forest green", "%green%"));
  EXPECT_TRUE(Expr::LikeMatch("special packed requests", "%special%requests%"));
  EXPECT_FALSE(Expr::LikeMatch("nothing here", "%special%requests%"));
  EXPECT_TRUE(Expr::LikeMatch("abc", "a_c"));
  EXPECT_FALSE(Expr::LikeMatch("abbc", "a_c"));
  EXPECT_TRUE(Expr::LikeMatch("", "%"));
  EXPECT_FALSE(Expr::LikeMatch("", "_"));
  EXPECT_TRUE(Expr::LikeMatch("xyz", "%%z"));
}

TEST(ExprTest, CaseSubstrYearIn) {
  Batch b = MakeBatch({{std::string("13-555"), int64_t(MakeDate(1995, 6, 1))},
                       {std::string("99-000"), int64_t(MakeDate(1996, 1, 2))}},
                      {DataType::kString, DataType::kDate});
  ColumnVector out;
  ASSERT_TRUE(Substr(Col(0, DataType::kString), 1, 2)->Eval(b, &out).ok());
  EXPECT_EQ(out.strs[0], "13");
  ASSERT_TRUE(Year(Col(1, DataType::kDate))->Eval(b, &out).ok());
  EXPECT_EQ(out.ints[0], 1995);
  EXPECT_EQ(out.ints[1], 1996);
  auto in = In(Substr(Col(0, DataType::kString), 1, 2),
               {std::string("13"), std::string("31")});
  ASSERT_TRUE(in->Eval(b, &out).ok());
  EXPECT_EQ(out.ints[0], 1);
  EXPECT_EQ(out.ints[1], 0);
  auto c = Case(Eq(Year(Col(1, DataType::kDate)), ConstInt(1995)),
                ConstInt(10), ConstInt(20));
  ASSERT_TRUE(c->Eval(b, &out).ok());
  EXPECT_EQ(out.ints, (std::vector<int64_t>{10, 20}));
}

class OperatorTest : public ::testing::Test {
 protected:
  OperatorTest() : pool_(4) {
    ctx_.pool = &pool_;
    ctx_.parallelism = 4;
    ctx_.read_vid = kMaxVid;
  }
  PhysOpRef Values(std::vector<Row> rows, std::vector<DataType> types) {
    return std::make_shared<ValuesOp>(types, std::move(rows));
  }
  ThreadPool pool_;
  ExecContext ctx_;
};

TEST_F(OperatorTest, FilterAndProject) {
  auto values = Values({{int64_t(1)}, {int64_t(2)}, {int64_t(3)},
                        {int64_t(4)}},
                       {DataType::kInt64});
  auto filter = std::make_shared<FilterOp>(
      values, Gt(Col(0, DataType::kInt64), ConstInt(2)));
  auto project = std::make_shared<ProjectOp>(
      filter, std::vector<ExprRef>{Mul(Col(0, DataType::kInt64),
                                       ConstInt(10))});
  std::vector<Row> out;
  ASSERT_TRUE(RunPlan(project, &ctx_, &out).ok());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(AsInt(out[0][0]), 30);
  EXPECT_EQ(AsInt(out[1][0]), 40);
}

TEST_F(OperatorTest, HashJoinVariants) {
  auto left = Values({{int64_t(1), std::string("a")},
                      {int64_t(2), std::string("b")},
                      {int64_t(3), std::string("c")}},
                     {DataType::kInt64, DataType::kString});
  auto right = Values({{int64_t(2), 20.0}, {int64_t(3), 30.0},
                       {int64_t(3), 33.0}},
                      {DataType::kInt64, DataType::kDouble});
  // Inner: 1 match for key 2, two for key 3.
  auto inner = std::make_shared<HashJoinOp>(right, left, std::vector<int>{0},
                                            std::vector<int>{0},
                                            JoinType::kInner);
  std::vector<Row> out;
  ASSERT_TRUE(RunPlan(inner, &ctx_, &out).ok());
  EXPECT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].size(), 4u);  // probe cols + build cols
  // Left outer keeps unmatched key 1 with nulls.
  auto leftj = std::make_shared<HashJoinOp>(right, left, std::vector<int>{0},
                                            std::vector<int>{0},
                                            JoinType::kLeft);
  ASSERT_TRUE(RunPlan(leftj, &ctx_, &out).ok());
  EXPECT_EQ(out.size(), 4u);
  int nulls = 0;
  for (auto& r : out) {
    if (IsNull(r[2])) nulls++;
  }
  EXPECT_EQ(nulls, 1);
  // Semi / anti.
  auto semi = std::make_shared<HashJoinOp>(right, left, std::vector<int>{0},
                                           std::vector<int>{0},
                                           JoinType::kSemi);
  ASSERT_TRUE(RunPlan(semi, &ctx_, &out).ok());
  EXPECT_EQ(out.size(), 2u);
  auto anti = std::make_shared<HashJoinOp>(right, left, std::vector<int>{0},
                                           std::vector<int>{0},
                                           JoinType::kAnti);
  ASSERT_TRUE(RunPlan(anti, &ctx_, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(AsInt(out[0][0]), 1);
}

TEST_F(OperatorTest, NullKeysNeverJoin) {
  auto left = Values({{Value{}, int64_t(1)}, {int64_t(2), int64_t(2)}},
                     {DataType::kInt64, DataType::kInt64});
  auto right = Values({{Value{}, int64_t(10)}, {int64_t(2), int64_t(20)}},
                      {DataType::kInt64, DataType::kInt64});
  auto inner = std::make_shared<HashJoinOp>(right, left, std::vector<int>{0},
                                            std::vector<int>{0},
                                            JoinType::kInner);
  std::vector<Row> out;
  ASSERT_TRUE(RunPlan(inner, &ctx_, &out).ok());
  ASSERT_EQ(out.size(), 1u);  // only the 2-2 pair
  EXPECT_EQ(AsInt(out[0][0]), 2);
}

TEST_F(OperatorTest, HashAggAllKinds) {
  auto values = Values({{std::string("a"), 1.0},
                        {std::string("a"), 3.0},
                        {std::string("b"), 10.0},
                        {std::string("a"), Value{}},
                        {std::string("b"), 10.0}},
                       {DataType::kString, DataType::kDouble});
  std::vector<AggSpec> aggs = {
      {AggKind::kSum, Col(1, DataType::kDouble)},
      {AggKind::kAvg, Col(1, DataType::kDouble)},
      {AggKind::kCount, Col(1, DataType::kDouble)},
      {AggKind::kCountStar, nullptr},
      {AggKind::kMin, Col(1, DataType::kDouble)},
      {AggKind::kMax, Col(1, DataType::kDouble)},
      {AggKind::kCountDistinct, Col(1, DataType::kDouble)},
  };
  auto agg = std::make_shared<HashAggOp>(values, std::vector<int>{0}, aggs);
  auto sort = std::make_shared<SortOp>(agg, std::vector<SortKey>{{0, false}});
  std::vector<Row> out;
  ASSERT_TRUE(RunPlan(sort, &ctx_, &out).ok());
  ASSERT_EQ(out.size(), 2u);
  // Group "a": sum 4, avg 2, count(v) 2 (null skipped), count(*) 3.
  EXPECT_EQ(AsString(out[0][0]), "a");
  EXPECT_DOUBLE_EQ(AsDouble(out[0][1]), 4.0);
  EXPECT_DOUBLE_EQ(AsDouble(out[0][2]), 2.0);
  EXPECT_EQ(AsInt(out[0][3]), 2);
  EXPECT_EQ(AsInt(out[0][4]), 3);
  EXPECT_DOUBLE_EQ(AsDouble(out[0][5]), 1.0);
  EXPECT_DOUBLE_EQ(AsDouble(out[0][6]), 3.0);
  EXPECT_EQ(AsInt(out[0][7]), 2);
  // Group "b": distinct count dedups the two 10.0 values.
  EXPECT_EQ(AsInt(out[1][7]), 1);
}

TEST_F(OperatorTest, GlobalAggOnEmptyInputReturnsOneRow) {
  auto values = Values({}, {DataType::kDouble});
  auto agg = std::make_shared<HashAggOp>(
      values, std::vector<int>{},
      std::vector<AggSpec>{{AggKind::kCountStar, nullptr},
                           {AggKind::kSum, Col(0, DataType::kDouble)}});
  std::vector<Row> out;
  ASSERT_TRUE(RunPlan(agg, &ctx_, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(AsInt(out[0][0]), 0);
  EXPECT_TRUE(IsNull(out[0][1]));  // SUM of nothing is NULL
}

TEST_F(OperatorTest, SortWithLimitAndDirections) {
  std::vector<Row> rows;
  for (int64_t i = 0; i < 100; ++i) rows.push_back({i % 10, i});
  auto values = Values(rows, {DataType::kInt64, DataType::kInt64});
  auto sort = std::make_shared<SortOp>(
      values, std::vector<SortKey>{{0, true}, {1, false}}, 5);
  std::vector<Row> out;
  ASSERT_TRUE(RunPlan(sort, &ctx_, &out).ok());
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(AsInt(out[0][0]), 9);
  EXPECT_EQ(AsInt(out[0][1]), 9);  // smallest i with key 9
  EXPECT_EQ(AsInt(out[4][1]), 49);
}

TEST_F(OperatorTest, LimitCutsAcrossBatches) {
  std::vector<Row> rows;
  for (int64_t i = 0; i < 5000; ++i) rows.push_back({i});
  auto values = Values(rows, {DataType::kInt64});
  auto limit = std::make_shared<LimitOp>(values, 3000);
  std::vector<Row> out;
  ASSERT_TRUE(RunPlan(limit, &ctx_, &out).ok());
  EXPECT_EQ(out.size(), 3000u);
}

TEST(CompactBatchTest, RemovesMaskedRowsInPlace) {
  Batch b = Batch::Make({DataType::kInt64, DataType::kString});
  for (int64_t i = 0; i < 6; ++i) {
    b.cols[0].AppendInt(i);
    b.cols[1].AppendString("s" + std::to_string(i));
    b.rows++;
  }
  CompactBatch(&b, {1, 0, 1, 0, 0, 1});
  ASSERT_EQ(b.rows, 3u);
  EXPECT_EQ(b.cols[0].ints, (std::vector<int64_t>{0, 2, 5}));
  EXPECT_EQ(b.cols[1].strs[2], "s5");
}

}  // namespace
}  // namespace imci
