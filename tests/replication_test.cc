#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "common/rng.h"
#include "tests/test_util.h"

namespace imci {
namespace {

std::shared_ptr<const Schema> SimpleSchema(TableId id = 1) {
  std::vector<ColumnDef> cols;
  cols.push_back({"id", DataType::kInt64, false, true});
  cols.push_back({"v", DataType::kInt64, false, true});
  cols.push_back({"s", DataType::kString, true, true});
  return std::make_shared<Schema>(id, "t" + std::to_string(id), cols, 0);
}

class ReplicationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    opts_.initial_ro_nodes = 1;
    opts_.ro.imci.row_group_size = 256;  // small groups: exercise boundaries
    opts_.ro.replication.maintenance_interval = 4;
    cluster_ = std::make_unique<Cluster>(opts_);
    ASSERT_TRUE(cluster_->CreateTable(SimpleSchema()).ok());
    ASSERT_TRUE(cluster_->Open().ok());
    ro_ = cluster_->ro(0);
    txns_ = cluster_->rw()->txn_manager();
  }

  // Verifies that the RO column index contents equal the RW row store.
  void ExpectConverged(TableId table = 1) {
    RowTable* rw_table = cluster_->rw()->engine()->GetTable(table);
    ColumnIndex* index = ro_->imci()->GetIndex(table);
    ASSERT_NE(index, nullptr);
    const Vid read_vid = ro_->applied_vid();
    std::vector<std::string> rw_rows, ro_rows;
    (void)rw_table->Scan([&](int64_t /*pk*/, const Row& row) {
      std::string s;
      for (const Value& v : row) s += ValueToString(v) + "|";
      rw_rows.push_back(std::move(s));
      return true;
    });
    const size_t ngroups = index->num_groups();
    for (size_t g = 0; g < ngroups; ++g) {
      auto grp = index->group(g);
      if (!grp) continue;
      const uint32_t used = index->GroupUsed(g);
      for (uint32_t off = 0; off < used; ++off) {
        if (!grp->Visible(off, read_vid)) continue;
        Row row;
        ASSERT_TRUE(index->MaterializeRow(grp->base_rid() + off, &row).ok());
        std::string s;
        for (const Value& v : row) s += ValueToString(v) + "|";
        ro_rows.push_back(std::move(s));
      }
    }
    std::sort(rw_rows.begin(), rw_rows.end());
    std::sort(ro_rows.begin(), ro_rows.end());
    EXPECT_EQ(rw_rows, ro_rows);
  }

  void CatchUp() { ASSERT_TRUE(ro_->CatchUpNow().ok()); }

  ClusterOptions opts_;
  std::unique_ptr<Cluster> cluster_;
  RoNode* ro_ = nullptr;
  TransactionManager* txns_ = nullptr;
};

TEST_F(ReplicationTest, InsertPropagates) {
  Transaction txn;
  txns_->Begin(&txn);
  ASSERT_TRUE(txns_->Insert(&txn, 1, {int64_t(1), int64_t(10),
                                      std::string("a")}).ok());
  ASSERT_TRUE(txns_->Insert(&txn, 1, {int64_t(2), int64_t(20), Value{}}).ok());
  ASSERT_TRUE(txns_->Commit(&txn).ok());
  CatchUp();
  EXPECT_EQ(ro_->applied_vid(), txn.commit_vid());
  ExpectConverged();
  Row row;
  ASSERT_TRUE(ro_->imci()->GetIndex(1)->LookupByPk(2, ro_->applied_vid(),
                                                   &row).ok());
  EXPECT_EQ(AsInt(row[1]), 20);
  EXPECT_TRUE(IsNull(row[2]));
}

TEST_F(ReplicationTest, UpdateBecomesOutOfPlaceDeleteInsert) {
  Transaction txn;
  txns_->Begin(&txn);
  ASSERT_TRUE(txns_->Insert(&txn, 1, {int64_t(1), int64_t(10),
                                      std::string("x")}).ok());
  ASSERT_TRUE(txns_->Commit(&txn).ok());
  CatchUp();
  const Vid v1 = ro_->applied_vid();

  Transaction txn2;
  txns_->Begin(&txn2);
  ASSERT_TRUE(txns_->Update(&txn2, 1, 1,
                            {int64_t(1), int64_t(99), std::string("y")}).ok());
  ASSERT_TRUE(txns_->Commit(&txn2).ok());
  CatchUp();
  const Vid v2 = ro_->applied_vid();
  ASSERT_GT(v2, v1);

  ColumnIndex* index = ro_->imci()->GetIndex(1);
  // Snapshot at v1 still sees the old version; v2 sees the new one.
  Row row;
  ASSERT_TRUE(index->LookupByPk(1, v2, &row).ok());
  EXPECT_EQ(AsInt(row[1]), 99);
  // The old version occupies RID 0 and is visible at v1.
  auto g0 = index->group(0);
  EXPECT_TRUE(g0->Visible(0, v1));
  EXPECT_FALSE(g0->Visible(0, v2));
  ExpectConverged();
}

TEST_F(ReplicationTest, AbortLeavesNoTrace) {
  Transaction txn;
  txns_->Begin(&txn);
  ASSERT_TRUE(txns_->Insert(&txn, 1, {int64_t(7), int64_t(1), Value{}}).ok());
  ASSERT_TRUE(txns_->Rollback(&txn).ok());
  Transaction txn2;  // a later commit so the RO advances
  txns_->Begin(&txn2);
  ASSERT_TRUE(txns_->Insert(&txn2, 1, {int64_t(8), int64_t(2), Value{}}).ok());
  ASSERT_TRUE(txns_->Commit(&txn2).ok());
  CatchUp();
  Row row;
  EXPECT_TRUE(ro_->imci()->GetIndex(1)
                  ->LookupByPk(7, ro_->applied_vid(), &row)
                  .IsNotFound());
  ExpectConverged();
}

TEST_F(ReplicationTest, DeletePropagates) {
  Transaction txn;
  txns_->Begin(&txn);
  for (int64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(txns_->Insert(&txn, 1, {i, i * 10, Value{}}).ok());
  }
  ASSERT_TRUE(txns_->Commit(&txn).ok());
  Transaction txn2;
  txns_->Begin(&txn2);
  ASSERT_TRUE(txns_->Delete(&txn2, 1, 5).ok());
  ASSERT_TRUE(txns_->Commit(&txn2).ok());
  CatchUp();
  Row row;
  EXPECT_TRUE(ro_->imci()->GetIndex(1)
                  ->LookupByPk(5, ro_->applied_vid(), &row)
                  .IsNotFound());
  ExpectConverged();
}

TEST_F(ReplicationTest, SmoRecordsNeverSurfaceAsDmls) {
  // Enough inserts to split leaves repeatedly; every SMO is TID 0 and must
  // not produce logical DMLs (row counts would diverge otherwise).
  for (int64_t i = 0; i < 2000; ++i) {
    Transaction txn;
    txns_->Begin(&txn);
    ASSERT_TRUE(txns_->Insert(&txn, 1, {i, i, std::string(100, 'x')}).ok());
    ASSERT_TRUE(txns_->Commit(&txn).ok());
  }
  CatchUp();
  ColumnIndex* index = ro_->imci()->GetIndex(1);
  EXPECT_EQ(index->visible_rows(ro_->applied_vid()), 2000u);
  ExpectConverged();
}

TEST_F(ReplicationTest, LargeTransactionPreCommit) {
  opts_.ro.replication.large_txn_dml_threshold = 64;
  // Rebuild a cluster with a small pre-commit threshold.
  cluster_ = std::make_unique<Cluster>(opts_);
  ASSERT_TRUE(cluster_->CreateTable(SimpleSchema()).ok());
  ASSERT_TRUE(cluster_->Open().ok());
  ro_ = cluster_->ro(0);
  txns_ = cluster_->rw()->txn_manager();

  // Drive the pipeline synchronously: manual PollOnce must not race the
  // background coordinator.
  ro_->StopReplication();
  Transaction big;
  txns_->Begin(&big);
  for (int64_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(txns_->Insert(&big, 1, {i, i, Value{}}).ok());
  }
  // Ship the uncommitted bulk; the RO should pre-commit (invisible rows).
  ASSERT_TRUE(ro_->pipeline()->PollOnce().ok());
  ASSERT_TRUE(ro_->pipeline()->PollOnce().ok());
  EXPECT_EQ(ro_->imci()->GetIndex(1)->visible_rows(ro_->applied_vid()), 0u);
  ASSERT_TRUE(txns_->Commit(&big).ok());
  CatchUp();
  EXPECT_GE(ro_->pipeline()->precommitted_txns(), 1u);
  EXPECT_EQ(ro_->imci()->GetIndex(1)->visible_rows(ro_->applied_vid()), 500u);
  ExpectConverged();
}

TEST_F(ReplicationTest, LargeTransactionAbortResidueInvisible) {
  opts_.ro.replication.large_txn_dml_threshold = 64;
  cluster_ = std::make_unique<Cluster>(opts_);
  ASSERT_TRUE(cluster_->CreateTable(SimpleSchema()).ok());
  ASSERT_TRUE(cluster_->Open().ok());
  ro_ = cluster_->ro(0);
  txns_ = cluster_->rw()->txn_manager();

  ro_->StopReplication();
  Transaction big;
  txns_->Begin(&big);
  for (int64_t i = 0; i < 300; ++i) {
    ASSERT_TRUE(txns_->Insert(&big, 1, {i, i, Value{}}).ok());
  }
  ASSERT_TRUE(ro_->pipeline()->PollOnce().ok());
  ASSERT_TRUE(txns_->Rollback(&big).ok());
  Transaction marker;
  txns_->Begin(&marker);
  ASSERT_TRUE(txns_->Insert(&marker, 1, {int64_t(9999), int64_t(1),
                                         Value{}}).ok());
  ASSERT_TRUE(txns_->Commit(&marker).ok());
  CatchUp();
  EXPECT_EQ(ro_->imci()->GetIndex(1)->visible_rows(ro_->applied_vid()), 1u);
  ExpectConverged();
}

TEST_F(ReplicationTest, RandomizedConvergenceProperty) {
  Rng rng(123);
  std::vector<int64_t> live;
  for (int round = 0; round < 200; ++round) {
    Transaction txn;
    txns_->Begin(&txn);
    const int ops = 1 + rng.Next() % 8;
    bool ok = true;
    for (int i = 0; i < ops && ok; ++i) {
      const int action = rng.Next() % 3;
      if (action == 0 || live.empty()) {
        int64_t pk = static_cast<int64_t>(rng.Next() % 100000);
        if (txns_->Insert(&txn, 1,
                          {pk, static_cast<int64_t>(rng.Next() % 1000),
                           rng.RandomString(0, 20)})
                .ok()) {
          live.push_back(pk);
        }
      } else if (action == 1) {
        int64_t pk = live[rng.Next() % live.size()];
        (void)txns_->Update(&txn, 1,
                      pk, {pk, static_cast<int64_t>(rng.Next() % 1000),
                           rng.RandomString(0, 20)});
      } else {
        size_t idx = rng.Next() % live.size();
        if (txns_->Delete(&txn, 1, live[idx]).ok()) {
          live.erase(live.begin() + idx);
        }
      }
    }
    if (rng.Next() % 10 == 0) {
      (void)txns_->Rollback(&txn);
    } else {
      ASSERT_TRUE(txns_->Commit(&txn).ok());
    }
    // Rollback invalidates our `live` tracking; resync from the row store.
    if (txn.commit_vid() == 0) {
      live.clear();
      (void)cluster_->rw()->engine()->GetTable(1)->Scan(
          [&](int64_t pk, const Row&) {
            live.push_back(pk);
            return true;
          });
    }
  }
  CatchUp();
  ExpectConverged();
}

TEST_F(ReplicationTest, ConcurrentWritersOnOneTableConverge) {
  // Regression: REDO records must be appended under the table write latch;
  // otherwise two RW threads can ship same-page slot operations in the
  // opposite order of their page modifications and Phase#1 corrupts the
  // replica (observed as hangs/crashes under the TPC-C bench).
  std::vector<std::thread> writers;
  std::atomic<int> committed{0};
  for (int w = 0; w < 8; ++w) {
    writers.emplace_back([&, w] {
      Rng rng(500 + w);
      for (int i = 0; i < 200; ++i) {
        Transaction txn;
        txns_->Begin(&txn);
        const int64_t pk = w * 1000 + i;
        bool ok = txns_->Insert(&txn, 1, {pk, pk, rng.RandomString(5, 30)})
                      .ok();
        if (ok && i % 3 == 0) {
          ok = txns_->Update(&txn, 1, pk,
                             {pk, pk + 1, rng.RandomString(5, 30)}).ok();
        }
        if (ok && txns_->Commit(&txn).ok()) {
          committed.fetch_add(1);
        } else if (!ok) {
          (void)txns_->Rollback(&txn);
        }
      }
    });
  }
  for (auto& t : writers) t.join();
  EXPECT_EQ(committed.load(), 1600);
  CatchUp();
  ExpectConverged();
}

TEST_F(ReplicationTest, CompactionPreservesContentAndReclaims) {
  // Use a cluster without background compaction so this test drives it.
  opts_.ro.replication.enable_compaction = false;
  cluster_ = std::make_unique<Cluster>(opts_);
  ASSERT_TRUE(cluster_->CreateTable(SimpleSchema()).ok());
  ASSERT_TRUE(cluster_->Open().ok());
  ro_ = cluster_->ro(0);
  txns_ = cluster_->rw()->txn_manager();
  // Fill two full groups then delete most rows.
  Transaction txn;
  txns_->Begin(&txn);
  for (int64_t i = 0; i < 512; ++i) {
    ASSERT_TRUE(txns_->Insert(&txn, 1, {i, i, Value{}}).ok());
  }
  ASSERT_TRUE(txns_->Commit(&txn).ok());
  Transaction txn2;
  txns_->Begin(&txn2);
  for (int64_t i = 0; i < 512; ++i) {
    if (i % 8 != 0) {
      ASSERT_TRUE(txns_->Delete(&txn2, 1, i).ok());
    }
  }
  ASSERT_TRUE(txns_->Commit(&txn2).ok());
  CatchUp();
  // Drive maintenance directly; must be serialized with Phase#2 appliers, so
  // stop the background pipeline first.
  ro_->StopReplication();
  ColumnIndex* index = ro_->imci()->GetIndex(1);
  index->FreezeFullGroups();
  const Vid vid = ro_->applied_vid();
  auto underflow = index->FindUnderflowGroups(vid);
  ASSERT_EQ(underflow.size(), 2u);  // both full groups are >50% deleted
  for (size_t gid : underflow) {
    uint32_t moved = 0;
    ASSERT_TRUE(index->CompactGroup(gid, vid, &moved).ok());
    EXPECT_GT(moved, 0u);
  }
  EXPECT_EQ(index->visible_rows(vid), 64u);
  ExpectConverged();
  EXPECT_GT(index->ReclaimRetired(vid), 0u);
  ExpectConverged();
}

}  // namespace
}  // namespace imci
