// Morsel-driven parallel executor: result equivalence and accounting.
//
// The executor's contract is that parallelism is invisible in the answer —
// any DOP, any morsel size, any stealing schedule must produce bit-identical
// results to a serial run. The tables here are integer-only so "identical"
// means exact equality (no float-rounding escape hatch), row groups are tiny
// so even small tables span many morsels, and the snapshot tests run against
// live OLTP commits so version visibility is exercised mid-scan. Also unit
// tests for the substrate the executor stands on: the work-stealing pool,
// ParallelFor, the per-query token ledger, and the optimizer's DOP choice.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "plan/optimizer.h"
#include "tests/test_util.h"

namespace imci {
namespace {

using testing_util::Canonicalize;

constexpr TableId kFact = 9001;
constexpr TableId kDim = 9002;
constexpr int kFactRows = 12000;
constexpr int kDimRows = 300;
constexpr int64_t kKeySpace = 400;  // fact.k range; keys >= kDimRows miss

std::shared_ptr<const Schema> FactSchema() {
  std::vector<ColumnDef> cols{{"id", DataType::kInt64, false, true},
                              {"k", DataType::kInt64, false, true},
                              {"grp", DataType::kInt64, false, true},
                              {"v", DataType::kInt64, true, true}};
  return std::make_shared<Schema>(kFact, "fact", cols, 0);
}

std::shared_ptr<const Schema> DimSchema() {
  std::vector<ColumnDef> cols{{"id", DataType::kInt64, false, true},
                              {"w", DataType::kInt64, false, true}};
  return std::make_shared<Schema>(kDim, "dim", cols, 0);
}

Row MakeFactRow(int64_t id, Rng* rng) {
  Row row{id, rng->Uniform(0, kKeySpace - 1), rng->Uniform(0, 31),
          Value{rng->Uniform(0, 100000)}};
  if (rng->Uniform(0, 24) == 0) row[3] = Value{};  // ~4% null v
  return row;
}

class MorselExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    seed_ = testing_util::TestSeed(907);
    ClusterOptions opts;
    opts.ro.imci.row_group_size = 256;  // many morsels even at this scale
    opts.ro.exec_threads = 4;
    opts.ro.default_parallelism = 4;
    opts.ro.morsel_row_groups = 2;  // multi-group morsels on every scan
    cluster_ = std::make_unique<Cluster>(opts);
    ASSERT_TRUE(cluster_->CreateTable(FactSchema()).ok());
    ASSERT_TRUE(cluster_->CreateTable(DimSchema()).ok());
    Rng rng(seed_);
    std::vector<Row> fact;
    fact.reserve(kFactRows);
    for (int64_t id = 0; id < kFactRows; ++id) {
      fact.push_back(MakeFactRow(id, &rng));
    }
    std::vector<Row> dim;
    dim.reserve(kDimRows);
    for (int64_t id = 0; id < kDimRows; ++id) {
      dim.push_back(Row{id, rng.Uniform(-50, 50)});
    }
    ASSERT_TRUE(cluster_->BulkLoad(kFact, std::move(fact)).ok());
    ASSERT_TRUE(cluster_->BulkLoad(kDim, std::move(dim)).ok());
    ASSERT_TRUE(cluster_->Open().ok());
    ro_ = cluster_->ro(0);
    ASSERT_TRUE(ro_->CatchUpNow().ok());
  }

  /// Plans covering every parallel operator: morsel scan (filtered and
  /// full), partition-parallel join build/probe for each join type, and the
  /// exchange-merged aggregation with and without group keys.
  std::vector<std::pair<const char*, LogicalRef>> Plans() {
    auto scan_fact = [] {
      return LScan(kFact, {0, 1, 2, 3});
    };
    auto filtered_fact = [] {
      return LScan(kFact, {0, 1, 2, 3},
                   Ge(Col(3, DataType::kInt64), ConstInt(50000)));
    };
    auto scan_dim = [] { return LScan(kDim, {0, 1}); };
    std::vector<std::pair<const char*, LogicalRef>> plans;
    plans.emplace_back("scan_filter", filtered_fact());
    plans.emplace_back(
        "join_inner",
        LJoin(scan_fact(), scan_dim(), {1}, {0}, JoinType::kInner));
    plans.emplace_back(
        "join_left", LJoin(scan_fact(), scan_dim(), {1}, {0}, JoinType::kLeft));
    plans.emplace_back(
        "join_semi", LJoin(scan_fact(), scan_dim(), {1}, {0}, JoinType::kSemi));
    plans.emplace_back(
        "join_anti", LJoin(scan_fact(), scan_dim(), {1}, {0}, JoinType::kAnti));
    plans.emplace_back(
        "agg_grouped",
        LAgg(scan_fact(), {2},
             {AggSpec{AggKind::kSum, Col(3, DataType::kInt64)},
              AggSpec{AggKind::kCountStar, nullptr},
              AggSpec{AggKind::kMin, Col(3, DataType::kInt64)},
              AggSpec{AggKind::kMax, Col(3, DataType::kInt64)},
              AggSpec{AggKind::kCountDistinct, Col(1, DataType::kInt64)}}));
    plans.emplace_back(
        "agg_global",
        LAgg(filtered_fact(), {},
             {AggSpec{AggKind::kSum, Col(3, DataType::kInt64)},
              AggSpec{AggKind::kCount, Col(3, DataType::kInt64)}}));
    plans.emplace_back(
        "join_agg",
        LAgg(LJoin(scan_fact(), scan_dim(), {1}, {0}, JoinType::kInner), {2},
             {AggSpec{AggKind::kSum, Col(5, DataType::kInt64)},
              AggSpec{AggKind::kCountStar, nullptr}}));
    return plans;
  }

  uint64_t seed_ = 0;
  std::unique_ptr<Cluster> cluster_;
  RoNode* ro_ = nullptr;
};

// Every plan, executed at DOP 2 and 4 repeatedly (different stealing
// schedules each run), must equal the DOP=1 reference exactly.
TEST_F(MorselExecTest, ParallelPlansMatchSerialExactly) {
  for (auto& [name, plan] : Plans()) {
    SCOPED_TRACE(name);
    std::vector<Row> ref_rows;
    ASSERT_TRUE(ro_->ExecuteColumn(plan, &ref_rows, 1).ok());
    const auto reference = Canonicalize(ref_rows);
    ASSERT_FALSE(reference.empty());
    for (int dop : {2, 4}) {
      for (int rep = 0; rep < 3; ++rep) {
        std::vector<Row> out;
        ASSERT_TRUE(ro_->ExecuteColumn(plan, &out, dop).ok());
        ASSERT_EQ(Canonicalize(out), reference)
            << "dop=" << dop << " rep=" << rep;
      }
    }
  }
}

// Morsel granularity is a performance knob, not a semantic one: the same
// plan at morsel sizes 1, 3 and 7 row groups (the last larger than many
// scans' group count) returns the reference answer.
TEST_F(MorselExecTest, MorselSizeDoesNotChangeAnswers) {
  const Vid vid = ro_->applied_vid();
  for (auto& [name, plan] : Plans()) {
    SCOPED_TRACE(name);
    std::vector<std::string> reference;
    for (int morsel : {1, 3, 7}) {
      PhysOpRef root;
      ASSERT_TRUE(LowerToColumnPlan(plan, ro_->imci(), &root).ok());
      ExecContext ctx;
      ctx.pool = ro_->exec_pool();
      ctx.parallelism = 4;
      ctx.morsel_row_groups = morsel;
      ctx.read_vid = vid;
      std::vector<Row> out;
      ASSERT_TRUE(RunPlan(root, &ctx, &out).ok());
      auto canon = Canonicalize(out);
      if (reference.empty()) {
        reference = std::move(canon);
      } else {
        ASSERT_EQ(canon, reference) << "morsel=" << morsel;
      }
    }
  }
}

// OLTP writers commit into fact while readers execute the same plan at a
// pinned VID with DOP 1 and DOP 4: both must see the identical frozen
// snapshot no matter how many commits land mid-scan.
TEST_F(MorselExecTest, PinnedSnapshotStableAcrossDopUnderConcurrentCommits) {
  const int rounds = testing_util::TestIters(12);
  SCOPED_TRACE(::testing::Message() << "IMCI_TEST_SEED=" << seed_);
  std::atomic<bool> stop{false};
  std::atomic<int> committed{0};
  constexpr int kWriters = 2;
  // Paced and capped: unthrottled writers on a small machine outrun the
  // single apply/query thread, and without checkpoints the log and version
  // arenas only ever grow — the cap bounds memory, the pacing spreads the
  // commits across the scan rounds so they still land mid-query.
  const int commits_per_writer = rounds * 60;
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      Rng rng(seed_ + 1000 + t);
      auto* txns = cluster_->rw()->txn_manager();
      int64_t next_insert = kFactRows + t * 1000000;
      for (int n = 0; n < commits_per_writer && !stop.load(); ++n) {
        Transaction txn;
        txns->Begin(&txn);
        Status s;
        if (rng.Uniform(0, 3) == 0) {
          s = txns->Insert(&txn, kFact, MakeFactRow(next_insert++, &rng));
        } else {
          const int64_t pk = rng.Uniform(0, kFactRows - 1);
          s = txns->Update(&txn, kFact, pk, MakeFactRow(pk, &rng));
        }
        if (s.ok() && txns->Commit(&txn).ok()) {
          committed.fetch_add(1);
        } else {
          (void)txns->Rollback(&txn);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }

  auto plans = Plans();
  for (int round = 0; round < rounds; ++round) {
    (void)ro_->CatchUpNow();
    const Vid vid = ro_->applied_vid();
    // Pin the snapshot on both indexes so background apply can't prune the
    // versions this round still reads.
    auto* fact_views = ro_->imci()->GetIndex(kFact)->read_views();
    auto* dim_views = ro_->imci()->GetIndex(kDim)->read_views();
    const uint64_t fact_pin = fact_views->Pin(vid);
    const uint64_t dim_pin = dim_views->Pin(vid);
    auto& [name, plan] = plans[round % plans.size()];
    SCOPED_TRACE(::testing::Message() << "round=" << round << " " << name);
    std::vector<std::string> reference;
    for (int dop : {1, 4, 4}) {
      PhysOpRef root;
      ASSERT_TRUE(LowerToColumnPlan(plan, ro_->imci(), &root).ok());
      ExecContext ctx;
      ctx.pool = ro_->exec_pool();
      ctx.parallelism = dop;
      ctx.morsel_row_groups = 2;
      ctx.read_vid = vid;
      std::vector<Row> out;
      ASSERT_TRUE(RunPlan(root, &ctx, &out).ok());
      auto canon = Canonicalize(out);
      if (reference.empty()) {
        reference = std::move(canon);
      } else {
        ASSERT_EQ(canon, reference) << "dop=" << dop;
      }
    }
    fact_views->Unpin(fact_pin);
    dim_views->Unpin(dim_pin);
  }
  stop.store(true);
  for (auto& w : writers) w.join();
  ASSERT_GT(committed.load(), 0);
  // The snapshot runs above never saw them mid-flight; after catch-up the
  // parallel executor agrees with the RW's authoritative row count.
  ASSERT_TRUE(ro_->CatchUpNow().ok());
  auto count_plan =
      LAgg(LScan(kFact, {0}), {}, {AggSpec{AggKind::kCountStar, nullptr}});
  std::vector<Row> out1, out4;
  ASSERT_TRUE(ro_->ExecuteColumn(count_plan, &out1, 1).ok());
  ASSERT_TRUE(ro_->ExecuteColumn(count_plan, &out4, 4).ok());
  ASSERT_EQ(Canonicalize(out1), Canonicalize(out4));
}

// Concurrent analytics queries share the pool through the token ledger:
// grants shrink under load, no query is refused, accounting returns to zero.
TEST_F(MorselExecTest, ConcurrentQueriesShareTokenBudget) {
  auto* ledger = ro_->query_tokens();
  ASSERT_EQ(ledger->in_use(), 0);
  auto plan = Plans()[5].second;  // agg_grouped
  std::vector<Row> ref_rows;
  ASSERT_TRUE(ro_->ExecuteColumn(plan, &ref_rows, 1).ok());
  const auto reference = Canonicalize(ref_rows);
  const uint64_t admitted_before = ledger->queries_admitted();
  constexpr int kThreads = 4;
  constexpr int kQueriesPerThread = 5;
  std::vector<std::thread> runners;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < kThreads; ++t) {
    runners.emplace_back([&] {
      for (int i = 0; i < kQueriesPerThread; ++i) {
        std::vector<Row> out;
        if (!ro_->ExecuteColumn(plan, &out, 4).ok() ||
            Canonicalize(out) != reference) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& r : runners) r.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(ledger->in_use(), 0);
  EXPECT_EQ(ledger->queries_admitted() - admitted_before,
            static_cast<uint64_t>(kThreads * kQueriesPerThread));
  EXPECT_LE(ledger->peak_in_use(), ledger->capacity() + kThreads);
}

TEST(QueryTokenLedgerTest, GrantArithmetic) {
  QueryTokenLedger ledger(4);
  EXPECT_EQ(ledger.capacity(), 4);
  const int g1 = ledger.Acquire(8);  // wants more than capacity
  EXPECT_EQ(g1, 4);
  EXPECT_EQ(ledger.in_use(), 4);
  EXPECT_EQ(ledger.queries_throttled(), 1u);
  const int g2 = ledger.Acquire(3);  // pool exhausted: minimum grant is 1
  EXPECT_EQ(g2, 1);
  EXPECT_EQ(ledger.in_use(), 5);
  ledger.Release(g1);
  const int g3 = ledger.Acquire(2);  // 3 free now, full grant
  EXPECT_EQ(g3, 2);
  EXPECT_EQ(ledger.queries_throttled(), 2u);  // only g1 and g2 were shrunk
  ledger.Release(g2);
  ledger.Release(g3);
  EXPECT_EQ(ledger.in_use(), 0);
  EXPECT_EQ(ledger.peak_in_use(), 5);
  EXPECT_EQ(ledger.queries_admitted(), 3u);

  // A null ledger (standalone executor) grants the request unclamped.
  QueryTokenGrant free_grant(nullptr, 7);
  EXPECT_EQ(free_grant.tokens(), 7);
  QueryTokenGrant min_grant(nullptr, 0);
  EXPECT_EQ(min_grant.tokens(), 1);
}

TEST(WorkStealingPoolTest, StealsFromBlockedWorkersQueue) {
  ThreadPool pool(2);
  // The first submit round-robins to queue 0; its owner (or a thief) parks
  // on the promise. The remaining tasks land on both queues, but only one
  // worker is live — it must steal the other queue's share to finish.
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  pool.Submit([released] { released.wait(); });
  std::atomic<int> done{0};
  constexpr int kTasks = 16;
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&done] { done.fetch_add(1); });
  }
  while (done.load() < kTasks) {
    std::this_thread::yield();
  }
  EXPECT_GE(pool.tasks_stolen(), 1u);
  release.set_value();
}

TEST(WorkStealingPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  constexpr int kN = 5000;
  std::vector<std::atomic<int>> hits(kN);
  ParallelFor(&pool, kN, [&](int i) { hits[i].fetch_add(1); });
  for (int i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
  // Nested ParallelFor from inside a pool task must not deadlock: the
  // caller participates, so progress needs no free worker.
  std::atomic<int> inner_total{0};
  ParallelFor(&pool, 8, [&](int) {
    ParallelFor(&pool, 8, [&](int) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 64);
}

TEST_F(MorselExecTest, ChooseDopScalesWithEstimatedRows) {
  ro_->RefreshStats();
  StatsCollector stats;
  stats.Collect(*ro_->imci());
  // Full fact scan: enough rows for real fan-out at a small rows-per-worker
  // budget, capped at max_dop.
  auto big = LScan(kFact, {0, 1, 2, 3});
  EXPECT_EQ(ChooseDop(big, stats, 8, 1e9), 1);  // huge budget: stay serial
  EXPECT_EQ(ChooseDop(big, stats, 8, 100.0), 8);  // tiny budget: all workers
  const int mid = ChooseDop(big, stats, 8, kFactRows / 2.0);
  EXPECT_GE(mid, 2);
  EXPECT_LE(mid, 8);
  // Tiny dim scan stays serial; max_dop=1 short-circuits everything.
  auto small = LScan(kDim, {0, 1});
  EXPECT_EQ(ChooseDop(small, stats, 8, 65536.0), 1);
  EXPECT_EQ(ChooseDop(big, stats, 1, 1.0), 1);
}

}  // namespace
}  // namespace imci
