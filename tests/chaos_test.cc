// Chaos suite: the fault-injection substrate (common/fault.h) driven through
// the storage and replication stack end-to-end.
//
// Three layers are pinned here:
//  - Durability honesty: a batch fsync that fails must fail *every* commit
//    in the batch and poison the log — the durable watermark never advances
//    past an fsync that did not happen — and Reopen() recovers the store
//    clean at exactly the pre-batch watermark.
//  - Honest consumers: the replication coordinator absorbs transient source
//    read failures with bounded retry + backoff, and wedges (with the reason
//    preserved) instead of silently stalling when the failures persist.
//  - Self-healing fleet: the cluster health monitor evicts a wedged RO,
//    queries re-route to survivors (falling back to the RW when the fleet is
//    empty — graceful degradation, never a client-visible error), a
//    replacement boots from the shared store, converges, and is re-admitted.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/fault.h"
#include "log/group_committer.h"
#include "log/log_store.h"
#include "tests/test_util.h"

namespace imci {
namespace {

std::shared_ptr<const Schema> SimpleSchema() {
  std::vector<ColumnDef> cols;
  cols.push_back({"id", DataType::kInt64, false, true});
  cols.push_back({"v", DataType::kInt64, false, true});
  return std::make_shared<Schema>(1, "t1", cols, 0);
}

/// Policy builder (Policy has too many knobs for designated init under
/// -Wmissing-field-initializers).
fault::Policy MakePolicy(fault::Kind kind, std::string scope = "",
                         uint64_t max_fires = UINT64_MAX,
                         uint32_t latency_us = 0) {
  fault::Policy p;
  p.kind = kind;
  p.scope = std::move(scope);
  p.max_fires = max_fires;
  p.latency_us = latency_us;
  return p;
}

/// Polls `pred` until true or `timeout_us` elapsed.
bool WaitUntil(const std::function<bool()>& pred,
               uint64_t timeout_us = 20'000'000) {
  Timer t;
  while (t.ElapsedMicros() < timeout_us) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
  return pred();
}

// --- Group commit under fsync faults ---------------------------------------

/// A bare RW commit path over one PolarFs (same rig as group_commit_test).
struct CommitRig {
  explicit CommitRig(PolarFs::Options fopts = {})
      : fs(fopts), engine(&fs, &catalog), redo(fs.log("redo")),
        binlog(fs.log("binlog")), txns(&engine, &redo, &locks, &binlog) {
    EXPECT_TRUE(engine.CreateTable(SimpleSchema()).ok());
  }
  PolarFs fs;
  Catalog catalog;
  RowStoreEngine engine;
  RedoWriter redo;
  LockManager locks;
  BinlogWriter binlog;
  TransactionManager txns;
};

Status CommitOne(CommitRig* rig, int64_t pk) {
  Transaction txn;
  rig->txns.Begin(&txn);
  Status s = rig->txns.Insert(&txn, 1, {pk, pk});
  if (!s.ok()) return s;
  return rig->txns.Commit(&txn);
}

TEST(ChaosGroupCommitTest, FsyncFaultFailsWholeBatchAndStoreReopensClean) {
  // Latency keeps each flush in flight long enough that concurrent
  // committers pile into one leader batch.
  PolarFs::Options fopts;
  fopts.fsync_latency_us = 200;
  CommitRig rig(fopts);
  for (int64_t pk = 0; pk < 8; ++pk) ASSERT_TRUE(CommitOne(&rig, pk).ok());
  LogStore* log = rig.fs.log("redo");
  const Lsn watermark = log->durable_lsn();
  ASSERT_EQ(log->written_lsn(), watermark);

  {
    fault::ScopedFault fsync_fail("polarfs.fsync",
                                  MakePolicy(fault::Kind::kFail));
    // Every commit across every batch must fail: either its own batch fsync
    // fails, or the poison latch refuses the append outright. No commit may
    // report durability the device never provided.
    const int kThreads = 4;
    const int kPerThread = 4;
    std::atomic<int> failed{0};
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          const int64_t pk = 1000 + int64_t(t) * 100 + i;
          if (!CommitOne(&rig, pk).ok()) failed.fetch_add(1);
        }
      });
    }
    for (auto& w : workers) w.join();
    EXPECT_EQ(failed.load(), kThreads * kPerThread);
    EXPECT_TRUE(log->poisoned());
    // The un-fsynced tail is trimmed: the watermark did NOT advance, and the
    // written tail rolled back to it — device-side those bytes were never
    // guaranteed.
    EXPECT_EQ(log->durable_lsn(), watermark);
    EXPECT_EQ(log->written_lsn(), watermark);
  }

  // The fault is disarmed, but the poison latch persists: the store refuses
  // commits until it is explicitly re-opened (no silent self-heal that could
  // mask the lost tail).
  EXPECT_FALSE(CommitOne(&rig, 5000).ok());

  // Reopen recovers clean at exactly the pre-batch watermark...
  ASSERT_TRUE(rig.fs.ReopenLogs().ok());
  EXPECT_FALSE(log->poisoned());
  EXPECT_EQ(log->written_lsn(), watermark);
  EXPECT_EQ(log->durable_lsn(), watermark);
  // ...and the recovered records are exactly the pre-fault history.
  std::vector<std::string> records;
  Status read_error;
  log->Read(0, watermark, &records, &read_error);
  ASSERT_TRUE(read_error.ok());

  // Clean resumption: new commits append and become durable past the
  // recovered watermark.
  ASSERT_TRUE(CommitOne(&rig, 6000).ok());
  EXPECT_GT(log->durable_lsn(), watermark);
}

TEST(ChaosGroupCommitTest, PoisonedDurableAppendsFailFastUntilReopen) {
  PolarFs fs;
  LogStore* log = fs.log("redo");
  const Lsn durable = log->Append({"a", "b", "c"}, /*durable=*/true);
  ASSERT_GT(durable, 0u);
  ASSERT_EQ(log->durable_lsn(), durable);

  {
    fault::ScopedFault fsync_fail("polarfs.fsync",
                                  MakePolicy(fault::Kind::kFail));
    Status error;
    EXPECT_EQ(log->Append({"lost"}, /*durable=*/true, &error), 0u);
    EXPECT_TRUE(error.IsIOError()) << error.ToString();
    EXPECT_TRUE(log->poisoned());
    // Fail-fast while poisoned: no fsync is even attempted.
    Status again;
    EXPECT_EQ(log->Append({"refused"}, /*durable=*/true, &again), 0u);
    EXPECT_TRUE(again.IsIOError()) << again.ToString();
  }
  EXPECT_EQ(log->written_lsn(), durable);

  ASSERT_TRUE(fs.ReopenLogs().ok());
  EXPECT_FALSE(log->poisoned());
  std::vector<std::string> records;
  Status read_error;
  log->Read(0, log->written_lsn(), &records, &read_error);
  ASSERT_TRUE(read_error.ok());
  ASSERT_EQ(records.size(), 3u);  // the lost tail never resurfaces
  EXPECT_EQ(records[2], "c");
  EXPECT_GT(log->Append({"d"}, /*durable=*/true), durable);
}

// --- Snapshot visibility vs durability under fsync refusal -----------------
// The PR-4 carried question, pinned in both directions. kCommitPoint is the
// paper's freshness stance: the snapshot point advances at the commit point,
// so a reader can observe a commit whose batch fsync then fails — that gap is
// *documented* behavior, demonstrated here. kDurable closes it: the lost
// commit must never become visible — not in the failure window, not after the
// store reopens, and (the subtle half) not after LATER commits publish higher
// VIDs. The last case is what TransactionManager::RetractLostCommit exists
// for: the failed commit's versions were already stamped with its VID, and
// without retraction the next successful publication would expose them even
// though the trimmed log no longer contains the commit.
TEST(DurableVisibilityTest, LostCommitVisibleAtCommitPointNeverInDurableMode) {
  // Arm 1 — kCommitPoint: the refused batch is already reader-visible.
  {
    CommitRig rig;
    ASSERT_TRUE(CommitOne(&rig, 1).ok());
    fault::ScopedFault refuse("polarfs.fsync", MakePolicy(fault::Kind::kFail));
    EXPECT_FALSE(CommitOne(&rig, 2).ok());
    ReadView view = rig.txns.OpenReadView();
    Row row;
    EXPECT_TRUE(rig.txns.Get(view, 1, 2, &row).ok())
        << "kCommitPoint publishes at the commit point (documented gap)";
  }
  // Arm 2 — kDurable: invisible in the window, across reopen, and past
  // later commits.
  {
    CommitRig rig;
    rig.txns.set_visibility(TransactionManager::Visibility::kDurable);
    ASSERT_TRUE(CommitOne(&rig, 1).ok());
    {
      fault::ScopedFault refuse("polarfs.fsync",
                                MakePolicy(fault::Kind::kFail));
      EXPECT_FALSE(CommitOne(&rig, 2).ok());
      ReadView view = rig.txns.OpenReadView();
      Row row;
      EXPECT_TRUE(rig.txns.Get(view, 1, 2, &row).IsNotFound())
          << "lost commit leaked into the failure window";
    }
    ASSERT_TRUE(rig.fs.ReopenLogs().ok());
    // A later commit publishes a higher VID. Without the retract, pk 2's
    // stamped versions would ride along into visibility here.
    ASSERT_TRUE(CommitOne(&rig, 3).ok());
    ReadView view = rig.txns.OpenReadView();
    Row row;
    EXPECT_TRUE(rig.txns.Get(view, 1, 3, &row).ok());
    EXPECT_TRUE(rig.txns.Get(view, 1, 2, &row).IsNotFound())
        << "trimmed commit resurfaced after a later publication";
    // The physical state agrees with the logical one: the tree image was
    // restored under the still-held locks, so a full scan shows exactly the
    // durable history.
    std::vector<Row> rows;
    ASSERT_TRUE(rig.txns.Scan(view, 1, [&](int64_t, const Row& r) {
      rows.push_back(r);
      return true;
    }).ok());
    EXPECT_EQ(testing_util::Canonicalize(rows),
              testing_util::Canonicalize({{int64_t(1), int64_t(1)},
                                          {int64_t(3), int64_t(3)}}));
  }
}

// --- Replication pipeline under read faults --------------------------------

class ChaosClusterTest : public ::testing::Test {
 protected:
  void Build(int ros, FleetHealthOptions health = {}) {
    ClusterOptions opts;
    opts.initial_ro_nodes = ros;
    opts.ro.imci.row_group_size = 256;
    // Fast failure detection for tests: wedge after ~3 retries x ~100us.
    opts.ro.replication.max_transient_retries = 3;
    opts.ro.replication.retry_backoff_us = 100;
    opts.ro.replication.retry_backoff_cap_us = 1'000;
    opts.ro.replication.poll_timeout_us = 500;
    opts.health = health;
    cluster_ = std::make_unique<Cluster>(opts);
    ASSERT_TRUE(cluster_->CreateTable(SimpleSchema()).ok());
    std::vector<Row> rows;
    for (int64_t i = 0; i < 200; ++i) rows.push_back({i, i});
    ASSERT_TRUE(cluster_->BulkLoad(1, std::move(rows)).ok());
    ASSERT_TRUE(cluster_->Open().ok());
    committed_ = 200;
  }

  void Churn(int n) {
    auto* txns = cluster_->rw()->txn_manager();
    for (int i = 0; i < n; ++i) {
      Transaction txn;
      txns->Begin(&txn);
      ASSERT_TRUE(
          txns->Insert(&txn, 1, {int64_t(10000 + committed_), int64_t(i)})
              .ok());
      ASSERT_TRUE(txns->Commit(&txn).ok());
      ++committed_;
    }
  }

  LogicalRef CountPlan() {
    return LAgg(LScan(1, {0}), {}, {AggSpec{AggKind::kCountStar, nullptr}});
  }

  std::unique_ptr<Cluster> cluster_;
  int64_t committed_ = 0;
};

TEST_F(ChaosClusterTest, TransientReadFaultsAbsorbedByBoundedRetry) {
  Build(1);
  RoNode* ro = cluster_->ro(0);
  ASSERT_EQ(ro->name(), "ro1");
  // Two read failures, then the device recovers: the coordinator's bounded
  // retry (3 attempts) must absorb them without wedging.
  fault::ScopedFault blip("logstore.read",
                          MakePolicy(fault::Kind::kFail, "ro1",
                                     /*max_fires=*/2));
  Churn(50);
  ASSERT_TRUE(WaitUntil(
      [&] { return ro->pipeline()->transient_retries() >= 2; }));
  ASSERT_TRUE(ro->CatchUpNow().ok());
  EXPECT_FALSE(ro->pipeline()->wedged());
  EXPECT_TRUE(ro->healthy());
  std::vector<Row> out;
  ASSERT_TRUE(ro->ExecuteColumn(CountPlan(), &out).ok());
  EXPECT_EQ(AsInt(out[0][0]), committed_);
}

TEST_F(ChaosClusterTest, PersistentReadFaultsWedgeWithReasonNotSilentStall) {
  Build(1);
  RoNode* ro = cluster_->ro(0);
  fault::ScopedFault storm("logstore.read",
                           MakePolicy(fault::Kind::kFail, "ro1"));
  Churn(5);  // there is history the node can no longer read
  ASSERT_TRUE(WaitUntil([&] { return ro->pipeline()->wedged(); }));
  // The terminal state is honest: reason preserved, health surface flipped,
  // and a catch-up wait returns the failure instead of hanging.
  EXPECT_TRUE(ro->pipeline()->wedge_reason().IsIOError())
      << ro->pipeline()->wedge_reason().ToString();
  EXPECT_FALSE(ro->healthy());
  EXPECT_TRUE(ro->health().wedged);
  EXPECT_FALSE(ro->CatchUpNow().ok());
  // Retries were bounded, not infinite.
  EXPECT_GE(ro->pipeline()->transient_retries(), 3u);
}

TEST_F(ChaosClusterTest, ProxySkipsWedgedNodeAndServesFromSurvivor) {
  Build(2);  // no health monitor: routing alone must degrade gracefully
  RoNode* ro1 = cluster_->ro(0);
  RoNode* ro2 = cluster_->ro(1);
  ASSERT_EQ(ro1->name(), "ro1");
  fault::ScopedFault storm("logstore.read",
                           MakePolicy(fault::Kind::kFail, "ro1"));
  Churn(30);
  ASSERT_TRUE(WaitUntil([&] { return ro1->pipeline()->wedged(); }));
  // The proxy never routes to the wedged node again...
  for (int i = 0; i < 10; ++i) EXPECT_EQ(cluster_->proxy()->PickRo(), ro2);
  // ...and both eventual and strong reads keep succeeding on the survivor
  // (strong: the healthy node catches up; the wedged one is never waited on).
  std::vector<Row> out;
  ASSERT_TRUE(cluster_->proxy()
                  ->ExecuteQuery(CountPlan(), &out, Consistency::kStrong)
                  .ok());
  EXPECT_EQ(AsInt(out[0][0]), committed_);
  EXPECT_EQ(cluster_->proxy()->rw_fallbacks(), 0u);
  // Without a health monitor nobody evicts: the fleet still lists 2 nodes.
  EXPECT_EQ(cluster_->ro_nodes().size(), 2u);
}

TEST_F(ChaosClusterTest, WedgedRoIsEvictedQueriesRerouteAndReplacementRejoins) {
  FleetHealthOptions health;
  health.enabled = true;
  health.check_interval_us = 1'000;
  health.auto_replace = true;
  health.readmit_max_lag = 64;
  Build(1, health);
  ASSERT_EQ(cluster_->ro(0)->name(), "ro1");
  ASSERT_TRUE(cluster_->ro(0)->CatchUpNow().ok());

  // A client hammering the proxy throughout the failure, eviction, and
  // replacement: ZERO queries may fail — degraded routing (peer RO, then the
  // RW snapshot engine) is the contract, errors are not.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> queries{0};
  std::atomic<uint64_t> query_errors{0};
  std::thread client([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      std::vector<Row> out;
      Status s = cluster_->proxy()->ExecuteQuery(CountPlan(), &out);
      if (!s.ok() || out.empty()) query_errors.fetch_add(1);
      queries.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  {
    // ro1's storage goes bad: every replication read on that node fails.
    fault::ScopedFault storm("logstore.read",
                             MakePolicy(fault::Kind::kFail, "ro1"));
    Churn(50);
    // The monitor detects the wedge and evicts...
    ASSERT_TRUE(WaitUntil([&] { return cluster_->evictions() >= 1; }));
    // ...and boots a replacement that converges and is re-admitted. The
    // fault stays armed the whole time: the replacement (different scope
    // tag) must be unaffected — the in-process analogue of one bad disk.
    ASSERT_TRUE(WaitUntil([&] {
      return cluster_->replacements() >= 1 && cluster_->ro_nodes().size() == 1;
    }));
  }
  stop.store(true);
  client.join();
  EXPECT_GT(queries.load(), 0u);
  EXPECT_EQ(query_errors.load(), 0u);
  // While the fleet was empty the proxy served reads from the RW.
  EXPECT_GT(cluster_->proxy()->rw_fallbacks(), 0u);

  RoNode* fresh = cluster_->ro(0);
  ASSERT_NE(fresh, nullptr);
  EXPECT_EQ(fresh->name(), "ro2");
  EXPECT_TRUE(fresh->healthy());
  EXPECT_TRUE(fresh->is_leader());  // leadership moved off the evicted node
  // The replacement serves fresh, correct data...
  ASSERT_TRUE(fresh->CatchUpNow().ok());
  std::vector<Row> out;
  ASSERT_TRUE(fresh->ExecuteColumn(CountPlan(), &out).ok());
  EXPECT_EQ(AsInt(out[0][0]), committed_);
  // ...and routing prefers it again (strong reads included).
  EXPECT_EQ(cluster_->proxy()->PickRo(), fresh);
  std::vector<Row> strong;
  ASSERT_TRUE(cluster_->proxy()
                  ->ExecuteQuery(CountPlan(), &strong, Consistency::kStrong)
                  .ok());
  EXPECT_EQ(AsInt(strong[0][0]), committed_);
}

// Soak: repeated rounds of concurrent commits with a batch fsync refused
// mid-round, on a kDurable cluster. The invariant after every round — before
// AND after the log reopens — is that both readers (the RW's snapshot engine
// and the RO's column engine, which consumes only the durable log prefix)
// show exactly the durable commit history: every commit whose record LSN the
// frozen watermark covers, nothing the trim erased. Inclusion is decided by
// recorded commit LSN, not client-observed status, and rounds continue after
// reopen so post-reopen appends land on the trimmed (reused) LSN range — the
// case where a leaked publication or replica cursor would surface as a
// phantom row.
TEST_F(ChaosClusterTest, FsyncRefusalSoakNoReaderObservesTrimmedCommits) {
  Build(1);
  auto* txns = cluster_->rw()->txn_manager();
  txns->set_visibility(TransactionManager::Visibility::kDurable);
  RoNode* ro = cluster_->ro(0);
  LogStore* log = cluster_->fs()->log("redo");

  // Logical model: pk -> v. Base load is {i, i} for i in [0, 200).
  std::map<int64_t, int64_t> model;
  for (int64_t i = 0; i < committed_; ++i) model[i] = i;

  struct Rec {
    int64_t pk;
    int64_t v;
    Lsn lsn;
  };
  auto verify = [&](const char* when) {
    SCOPED_TRACE(when);
    std::vector<Row> expected;
    for (const auto& [pk, v] : model) expected.push_back({pk, v});
    std::vector<Row> rw_rows;
    ReadView view = txns->OpenReadView();
    ASSERT_TRUE(txns->Scan(view, 1, [&](int64_t, const Row& r) {
      rw_rows.push_back(r);
      return true;
    }).ok());
    EXPECT_EQ(testing_util::Canonicalize(rw_rows),
              testing_util::Canonicalize(expected));
    ASSERT_TRUE(ro->CatchUpNow().ok());
    std::vector<Row> ro_rows;
    ASSERT_TRUE(ro->ExecuteColumn(LScan(1, {0, 1}), &ro_rows).ok());
    EXPECT_EQ(testing_util::Canonicalize(ro_rows),
              testing_util::Canonicalize(expected));
  };

  int64_t next_pk = 5000;
  for (int round = 0; round < 4; ++round) {
    SCOPED_TRACE(::testing::Message() << "round=" << round);
    std::mutex mu;
    std::vector<Rec> recs;
    std::atomic<int> client_failures{0};
    {
      // The 4th batch fsync of the round is refused; the poison latch then
      // fails every later commit in the round.
      fault::Policy p;
      p.kind = fault::Kind::kFail;
      p.hit_at = 4;
      p.max_fires = 1;
      fault::ScopedFault refuse("polarfs.fsync", p);
      std::vector<std::thread> workers;
      // Thread 0: fresh inserts. Thread 1: updates over a fixed base range —
      // a refused update must roll the row image back, not just hide it.
      workers.emplace_back([&] {
        for (int i = 0; i < 10; ++i) {
          Transaction txn;
          txns->Begin(&txn);
          const int64_t pk = next_pk + i;
          const int64_t v = round * 100 + i;
          if (!txns->Insert(&txn, 1, {pk, v}).ok()) {
            (void)txns->Rollback(&txn);
            continue;
          }
          if (!txns->Commit(&txn).ok()) client_failures.fetch_add(1);
          if (txn.commit_lsn() != 0) {
            std::lock_guard<std::mutex> g(mu);
            recs.push_back({pk, v, txn.commit_lsn()});
          }
        }
      });
      workers.emplace_back([&] {
        for (int i = 0; i < 10; ++i) {
          Transaction txn;
          txns->Begin(&txn);
          const int64_t pk = i % 5;
          const int64_t v = round * 1000 + i;
          if (!txns->Update(&txn, 1, pk, {pk, v}).ok()) {
            (void)txns->Rollback(&txn);
            continue;
          }
          if (!txns->Commit(&txn).ok()) client_failures.fetch_add(1);
          if (txn.commit_lsn() != 0) {
            std::lock_guard<std::mutex> g(mu);
            recs.push_back({pk, v, txn.commit_lsn()});
          }
        }
      });
      for (auto& w : workers) w.join();
    }
    next_pk += 10;

    // The refused batch froze the watermark; fold exactly the durable prefix
    // into the model, in LSN (== serialization) order.
    const Lsn durable = log->durable_lsn();
    std::sort(recs.begin(), recs.end(),
              [](const Rec& a, const Rec& b) { return a.lsn < b.lsn; });
    size_t lost = 0;
    for (const Rec& r : recs) {
      if (r.lsn > durable) {
        ++lost;
        continue;
      }
      model[r.pk] = r.v;
    }
    // The refused batch carried at least one enqueued-but-trimmed commit,
    // and its committers saw the failure.
    EXPECT_GE(lost, 1u);
    EXPECT_GE(static_cast<size_t>(client_failures.load()), lost);

    verify("post-refusal, store still poisoned");
    ASSERT_TRUE(cluster_->fs()->ReopenLogs().ok());
    verify("post-reopen");
  }
}

TEST_F(ChaosClusterTest, HungCoordinatorIsEvictedViaHeartbeat) {
  FleetHealthOptions health;
  health.enabled = true;
  health.check_interval_us = 2'000;
  health.heartbeat_timeout_us = 50'000;
  health.auto_replace = false;  // isolate the detection path
  Build(1, health);
  ASSERT_EQ(cluster_->ro(0)->name(), "ro1");
  // Not a failure the coordinator can see: every read stalls 300ms inside
  // the device. The pipeline never wedges — the heartbeat goes stale, which
  // the monitor must treat exactly like a dead node. The churn matters: the
  // poll loop only enters the device when there are durable records to
  // fetch, so an idle log would never touch the tar pit.
  fault::ScopedFault tarpit(
      "logstore.read", MakePolicy(fault::Kind::kLatency, "ro1", UINT64_MAX,
                                  /*latency_us=*/300'000));
  Churn(10);
  ASSERT_TRUE(WaitUntil([&] { return cluster_->evictions() >= 1; }));
  EXPECT_TRUE(cluster_->ro_nodes().empty());
  // Graceful degradation with an empty fleet: reads come from the RW.
  std::vector<Row> out;
  ASSERT_TRUE(cluster_->proxy()->ExecuteQuery(CountPlan(), &out).ok());
  EXPECT_EQ(AsInt(out[0][0]), committed_);
  EXPECT_GT(cluster_->proxy()->rw_fallbacks(), 0u);
}

}  // namespace
}  // namespace imci
