#ifndef POLARDB_IMCI_TESTS_TEST_UTIL_H_
#define POLARDB_IMCI_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "workloads/tpch.h"

namespace imci {
namespace testing_util {

/// RNG seed for randomized/property tests: the IMCI_TEST_SEED env var wins
/// over the suite's default so a failure seen anywhere can be replayed
/// exactly (`IMCI_TEST_SEED=<seed> ctest -R Property`). Tests should log the
/// effective seed on failure (e.g. via SCOPED_TRACE).
inline uint64_t TestSeed(uint64_t default_seed) {
  const char* env = std::getenv("IMCI_TEST_SEED");
  if (env == nullptr || *env == '\0') return default_seed;
  return std::strtoull(env, nullptr, 0);
}

/// Iteration count for property tests: IMCI_TEST_ITERS scales the run
/// (shorter for smoke runs, longer for soak runs) without recompiling.
inline int TestIters(int default_iters) {
  const char* env = std::getenv("IMCI_TEST_ITERS");
  if (env == nullptr || *env == '\0') return default_iters;
  const long v = std::strtol(env, nullptr, 0);
  return v > 0 ? static_cast<int>(v) : default_iters;
}

/// Normalizes a result set for engine-equivalence comparison: values are
/// rendered to strings (doubles rounded to 2 decimals to absorb summation
/// order differences) and rows sorted.
inline std::vector<std::string> Canonicalize(const std::vector<Row>& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const Row& r : rows) {
    std::string line;
    for (const Value& v : r) {
      if (std::holds_alternative<double>(v)) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.2f|", std::get<double>(v));
        line += buf;
      } else {
        line += ValueToString(v);
        line += '|';
      }
    }
    out.push_back(std::move(line));
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Builds a cluster pre-loaded with TPC-H data at the given scale factor.
inline std::unique_ptr<Cluster> MakeTpchCluster(double sf, int ros = 1,
                                                uint32_t group_size = 4096) {
  ClusterOptions opts;
  opts.initial_ro_nodes = ros;
  opts.ro.imci.row_group_size = group_size;
  opts.ro.exec_threads = 8;
  auto cluster = std::make_unique<Cluster>(opts);
  tpch::TpchGen gen(sf);
  for (auto& schema : gen.Schemas()) {
    if (!cluster->CreateTable(schema).ok()) return nullptr;
  }
  for (auto table : {tpch::kRegion, tpch::kNation, tpch::kSupplier,
                     tpch::kPart, tpch::kPartsupp, tpch::kCustomer,
                     tpch::kOrders, tpch::kLineitem}) {
    if (!cluster->BulkLoad(table, gen.Generate(table)).ok()) return nullptr;
  }
  if (!cluster->Open().ok()) return nullptr;
  return cluster;
}

}  // namespace testing_util
}  // namespace imci

#endif  // POLARDB_IMCI_TESTS_TEST_UTIL_H_
