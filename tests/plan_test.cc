#include <gtest/gtest.h>

#include "plan/optimizer.h"
#include "tests/test_util.h"

namespace imci {
namespace {

TEST(JoinOrderTest, PrefersSmallIntermediateResults) {
  // Star schema: fact (1M) with two dims (100, 10). Starting from a dim and
  // joining fact last is never optimal; the DP should start small.
  JoinGraph g;
  g.cardinalities = {1'000'000, 100, 10};
  g.edges = {{0, 1, 0.01}, {0, 2, 0.1}};
  JoinOrder order = OrderJoins(g);
  ASSERT_EQ(order.order.size(), 3u);
  EXPECT_GT(order.cost, 0);
  // Chain: A(1000) - B(10) - C(1000) with selective A-B edge: join A-B first.
  JoinGraph chain;
  chain.cardinalities = {1000, 10, 1000};
  chain.edges = {{0, 1, 0.001}, {1, 2, 0.01}};
  JoinOrder o2 = OrderJoins(chain);
  ASSERT_EQ(o2.order.size(), 3u);
  EXPECT_NE(o2.order[0], 2);  // never start by materializing the far side
}

TEST(JoinOrderTest, HandlesSingleAndEmpty) {
  JoinGraph g;
  EXPECT_TRUE(OrderJoins(g).order.empty());
  g.cardinalities = {42};
  JoinOrder o = OrderJoins(g);
  ASSERT_EQ(o.order.size(), 1u);
  EXPECT_EQ(o.order[0], 0);
}

TEST(JoinOrderTest, ExhaustiveSixRelationChainIsOrderedGreedily) {
  JoinGraph g;
  for (int i = 0; i < 6; ++i) g.cardinalities.push_back(1000.0 * (i + 1));
  for (int i = 0; i + 1 < 6; ++i) g.edges.push_back({i, i + 1, 0.001});
  JoinOrder o = OrderJoins(g);
  ASSERT_EQ(o.order.size(), 6u);
  // Every prefix must stay connected (no cross products).
  std::set<int> seen{o.order[0]};
  for (size_t i = 1; i < o.order.size(); ++i) {
    bool connected = false;
    for (auto& e : g.edges) {
      if ((seen.count(e.a) && e.b == o.order[i]) ||
          (seen.count(e.b) && e.a == o.order[i])) {
        connected = true;
      }
    }
    EXPECT_TRUE(connected) << "relation " << o.order[i];
    seen.insert(o.order[i]);
  }
}

class PlanOnTpch : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    cluster_ = testing_util::MakeTpchCluster(0.01).release();
    ASSERT_NE(cluster_, nullptr);
    ro_ = cluster_->ro(0);
    ASSERT_TRUE(ro_->CatchUpNow().ok());
    ro_->RefreshStats();
  }
  static void TearDownTestSuite() { delete cluster_; }
  static Cluster* cluster_;
  static RoNode* ro_;
};
Cluster* PlanOnTpch::cluster_ = nullptr;
RoNode* PlanOnTpch::ro_ = nullptr;

TEST_F(PlanOnTpch, StatsReflectTableSizes) {
  const TableStats* li = ro_->stats()->Get(tpch::kLineitem);
  const TableStats* na = ro_->stats()->Get(tpch::kNation);
  ASSERT_NE(li, nullptr);
  ASSERT_NE(na, nullptr);
  EXPECT_GT(li->row_count, na->row_count * 10);
  EXPECT_EQ(na->row_count, 25u);
}

TEST_F(PlanOnTpch, SelectivityEstimates) {
  auto li_schema = cluster_->catalog()->GetByName("lineitem");
  const TableStats* ts = ro_->stats()->Get(li_schema->table_id());
  const int shipdate = li_schema->ColumnIndex("l_shipdate");
  // Narrow one-year window over a ~6.5-year range: selectivity ~0.15.
  auto filter = And(Ge(Col(0, DataType::kDate), ConstDate(1994, 1, 1)),
                    Lt(Col(0, DataType::kDate), ConstDate(1995, 1, 1)));
  double sel = EstimateSelectivity(filter, ts, {shipdate});
  EXPECT_GT(sel, 0.05);
  EXPECT_LT(sel, 0.35);
  // Equality on a high-NDV key is tiny.
  auto eq = Eq(Col(0, DataType::kInt64), ConstInt(5));
  const int okey = li_schema->ColumnIndex("l_orderkey");
  double eq_sel = EstimateSelectivity(eq, ts, {okey});
  EXPECT_LT(eq_sel, 0.05);
}

TEST_F(PlanOnTpch, LoweringProducesSameResultsOnBothEngines) {
  // A representative join+agg plan, lowered twice.
  auto orders = cluster_->catalog()->GetByName("orders");
  auto cust = cluster_->catalog()->GetByName("customer");
  auto plan = LAgg(
      LJoin(LScan(orders->table_id(),
                  {orders->ColumnIndex("o_custkey"),
                   orders->ColumnIndex("o_totalprice")}),
            LScan(cust->table_id(), {cust->ColumnIndex("c_custkey"),
                                     cust->ColumnIndex("c_nationkey")}),
            {0}, {0}),
      {3}, {AggSpec{AggKind::kSum, Col(1, DataType::kDouble)},
            AggSpec{AggKind::kCountStar, nullptr}});
  std::vector<Row> col_rows, row_rows;
  ASSERT_TRUE(ro_->ExecuteColumn(plan, &col_rows).ok());
  ASSERT_TRUE(ro_->ExecuteRow(plan, &row_rows).ok());
  EXPECT_EQ(testing_util::Canonicalize(col_rows),
            testing_util::Canonicalize(row_rows));
  EXPECT_EQ(col_rows.size(), 25u);  // one group per nation
}

TEST_F(PlanOnTpch, IntraNodeRoutingByCost) {
  auto cust = cluster_->catalog()->GetByName("customer");
  // Point query -> row engine.
  auto point = LScan(cust->table_id(), {0, 5},
                     Eq(Col(0, DataType::kInt64), ConstInt(3)));
  EngineChoice chosen;
  std::vector<Row> out;
  ASSERT_TRUE(ro_->Execute(point, &out, &chosen).ok());
  EXPECT_EQ(chosen, EngineChoice::kRowEngine);
  ASSERT_EQ(out.size(), 1u);
  // Full lineitem scan -> column engine.
  auto li = cluster_->catalog()->GetByName("lineitem");
  auto scan = LAgg(LScan(li->table_id(), {li->ColumnIndex("l_quantity")}),
                   {}, {AggSpec{AggKind::kSum, Col(0, DataType::kDouble)}});
  ASSERT_TRUE(ro_->Execute(scan, &out, &chosen).ok());
  EXPECT_EQ(chosen, EngineChoice::kColumnEngine);
}

TEST_F(PlanOnTpch, RowEngineUsesSecondaryIndexPath) {
  auto su = cluster_->catalog()->GetByName("supplier");
  const int nk = su->ColumnIndex("s_nationkey");
  auto plan = LScan(su->table_id(), {nk, su->ColumnIndex("s_suppkey")},
                    Eq(Col(0, DataType::kInt64), ConstInt(7)));
  std::vector<Row> via_index, via_column;
  ASSERT_TRUE(ro_->ExecuteRow(plan, &via_index).ok());
  ASSERT_TRUE(ro_->ExecuteColumn(plan, &via_column).ok());
  EXPECT_EQ(testing_util::Canonicalize(via_index),
            testing_util::Canonicalize(via_column));
}

}  // namespace
}  // namespace imci
