#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace imci {
namespace {

using testing_util::Canonicalize;
using testing_util::MakeTpchCluster;

class TpchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    cluster_ = MakeTpchCluster(0.005).release();
    ASSERT_NE(cluster_, nullptr);
    ro_ = cluster_->ro(0);
    ASSERT_TRUE(ro_->CatchUpNow().ok());
    ro_->RefreshStats();
  }
  static void TearDownTestSuite() {
    delete cluster_;
    cluster_ = nullptr;
  }

  static Cluster* cluster_;
  static RoNode* ro_;
};

Cluster* TpchTest::cluster_ = nullptr;
RoNode* TpchTest::ro_ = nullptr;

/// The dual-engine transparency contract (G#1): both engines must return the
/// same result for every TPC-H query.
class TpchEngineEquivalence : public TpchTest,
                              public ::testing::WithParamInterface<int> {};

TEST_P(TpchEngineEquivalence, ColumnMatchesRow) {
  const int q = GetParam();
  auto col_exec = [&](const LogicalRef& plan, std::vector<Row>* out) {
    return ro_->ExecuteColumn(plan, out);
  };
  auto row_exec = [&](const LogicalRef& plan, std::vector<Row>* out) {
    return ro_->ExecuteRow(plan, out);
  };
  std::vector<Row> col_rows, row_rows;
  ASSERT_TRUE(
      tpch::RunQuery(q, *cluster_->catalog(), col_exec, &col_rows).ok())
      << "column engine failed on Q" << q;
  ASSERT_TRUE(
      tpch::RunQuery(q, *cluster_->catalog(), row_exec, &row_rows).ok())
      << "row engine failed on Q" << q;
  EXPECT_EQ(Canonicalize(col_rows), Canonicalize(row_rows)) << "Q" << q;
}

INSTANTIATE_TEST_SUITE_P(AllQueries, TpchEngineEquivalence,
                         ::testing::Range(1, 23));

TEST_F(TpchTest, QueriesReturnPlausibleShapes) {
  auto exec = [&](const LogicalRef& plan, std::vector<Row>* out) {
    return ro_->ExecuteColumn(plan, out);
  };
  std::vector<Row> rows;
  // Q1 groups by (returnflag, linestatus): at most 6 combinations.
  ASSERT_TRUE(tpch::RunQuery(1, *cluster_->catalog(), exec, &rows).ok());
  EXPECT_GE(rows.size(), 3u);
  EXPECT_LE(rows.size(), 6u);
  EXPECT_EQ(rows[0].size(), 10u);  // 2 keys + 8 aggregates
  // Q6 is a single-row aggregate.
  ASSERT_TRUE(tpch::RunQuery(6, *cluster_->catalog(), exec, &rows).ok());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_FALSE(IsNull(rows[0][0]));
  EXPECT_GT(NumericValue(rows[0][0]), 0.0);
  // Q4 has at most 5 priorities.
  ASSERT_TRUE(tpch::RunQuery(4, *cluster_->catalog(), exec, &rows).ok());
  EXPECT_LE(rows.size(), 5u);
  EXPECT_GE(rows.size(), 1u);
  // Q10 returns at most 20 customers.
  ASSERT_TRUE(tpch::RunQuery(10, *cluster_->catalog(), exec, &rows).ok());
  EXPECT_LE(rows.size(), 20u);
}

TEST_F(TpchTest, PackPruningSkipsGroups) {
  ColumnIndex* li = ro_->imci()->GetIndex(tpch::kLineitem);
  ASSERT_NE(li, nullptr);
  const auto& schema = li->schema();
  const int shipdate = schema.ColumnIndex("l_shipdate");
  // A predicate excluding every row: all groups must be pruned.
  auto scan = std::make_shared<ColumnScanOp>(
      li, std::vector<int>{shipdate},
      Lt(Col(0, DataType::kDate), ConstDate(1970, 1, 1)));
  ExecContext ctx;
  ctx.pool = ro_->exec_pool();
  ctx.parallelism = 4;
  ctx.read_vid = ro_->applied_vid();
  RowSet out;
  ASSERT_TRUE(scan->Execute(&ctx, &out).ok());
  EXPECT_EQ(out.TotalRows(), 0u);
  EXPECT_GT(scan->groups_pruned(), 0u);
  EXPECT_EQ(scan->groups_scanned(), 0u);
}

TEST_F(TpchTest, RoutingSendsPointQueriesToRowEngine) {
  auto cust = cluster_->catalog()->GetByName("customer");
  auto plan = LScan(cust->table_id(), {0, 5},
                    Eq(Col(0, DataType::kInt64), ConstInt(42)));
  RoutingDecision d = RouteQuery(plan, *ro_->stats(), 20000.0);
  EXPECT_EQ(d.engine, EngineChoice::kRowEngine);
  auto li = cluster_->catalog()->GetByName("lineitem");
  auto big = LScan(li->table_id(), {5, 6}, nullptr);
  d = RouteQuery(big, *ro_->stats(), 20000.0);
  EXPECT_EQ(d.engine, EngineChoice::kColumnEngine);
}

}  // namespace
}  // namespace imci
