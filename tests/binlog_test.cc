#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "log/log_store.h"
#include "polarfs/polarfs.h"
#include "rowstore/binlog.h"

namespace imci {
namespace {

using Event = BinlogWriter::Event;

Event MakeEvent(Event::Op op, TableId table, int64_t pk,
                std::string image = "") {
  Event e;
  e.op = op;
  e.table_id = table;
  e.pk = pk;
  e.row_image = std::move(image);
  return e;
}

struct ReplayedTxn {
  Tid tid;
  Vid vid;
  std::vector<Event> events;
};

std::vector<ReplayedTxn> ReplayAll(PolarFs* fs) {
  std::vector<ReplayedTxn> out;
  BinlogWriter::Replay(
      fs->log("binlog"),
      [&](Tid tid, Vid vid, const std::vector<Event>& events) {
        out.push_back({tid, vid, events});
      });
  return out;
}

TEST(BinlogTest, EmptyLogReplaysNothing) {
  PolarFs fs;
  EXPECT_EQ(BinlogWriter::Replay(fs.log("binlog"),
                                 [](Tid, Vid, const std::vector<Event>&) {
                                   FAIL() << "nothing to replay";
                                 }),
            0u);
}

TEST(BinlogTest, RoundTripPreservesCommitOrderAndPayloads) {
  PolarFs fs;
  BinlogWriter binlog(fs.log("binlog"));
  (void)binlog.CommitTxn(11, 1, 1001,
                   {MakeEvent(Event::Op::kInsert, 1, 100, "row-100"),
                    MakeEvent(Event::Op::kUpdate, 1, 100, "row-100v2")});
  (void)binlog.CommitTxn(12, 2, 1002, {MakeEvent(Event::Op::kDelete, 2, 7)});
  (void)binlog.CommitTxn(13, 3, 1003, {});  // empty txn is still a commit record
  EXPECT_EQ(binlog.txns_written(), 3u);
  EXPECT_EQ(binlog.last_seq(), 3u);

  auto txns = ReplayAll(&fs);
  ASSERT_EQ(txns.size(), 3u);
  EXPECT_EQ(txns[0].tid, 11u);
  EXPECT_EQ(txns[0].vid, 1u);
  ASSERT_EQ(txns[0].events.size(), 2u);
  EXPECT_EQ(txns[0].events[0].op, Event::Op::kInsert);
  EXPECT_EQ(txns[0].events[0].table_id, 1u);
  EXPECT_EQ(txns[0].events[0].pk, 100);
  EXPECT_EQ(txns[0].events[0].row_image, "row-100");
  EXPECT_EQ(txns[0].events[1].op, Event::Op::kUpdate);
  EXPECT_EQ(txns[0].events[1].row_image, "row-100v2");
  EXPECT_EQ(txns[1].tid, 12u);
  EXPECT_EQ(txns[1].vid, 2u);
  ASSERT_EQ(txns[1].events.size(), 1u);
  EXPECT_EQ(txns[1].events[0].op, Event::Op::kDelete);
  EXPECT_EQ(txns[1].events[0].pk, 7);
  EXPECT_TRUE(txns[1].events[0].row_image.empty());
  EXPECT_EQ(txns[2].tid, 13u);
  EXPECT_TRUE(txns[2].events.empty());
}

TEST(BinlogTest, EveryCommitPaysItsOwnFsync) {
  PolarFs fs;
  BinlogWriter binlog(fs.log("binlog"));
  const uint64_t before = fs.fsync_count();
  (void)binlog.CommitTxn(1, 1, 0, {MakeEvent(Event::Op::kInsert, 1, 1, "x")});
  (void)binlog.CommitTxn(2, 2, 0, {MakeEvent(Event::Op::kInsert, 1, 2, "y")});
  EXPECT_EQ(fs.fsync_count(), before + 2);
}

TEST(BinlogTest, TruncatedTailStopsReplayAtLastGoodRecord) {
  PolarFs::Options opt;
  opt.log_segment_bytes = 1 << 16;  // all five records share one segment
  PolarFs fs(opt);
  BinlogWriter binlog(fs.log("binlog"));
  for (int i = 1; i <= 5; ++i) {
    (void)binlog.CommitTxn(i, i, 0,
                     {MakeEvent(Event::Op::kInsert, 1, i,
                                "payload-" + std::to_string(i))});
  }
  // Simulated crash mid-write: the segment's durable tail loses its last
  // bytes, tearing the final record's frame.
  const std::string seg = LogStore::SegmentFileName("binlog", 1);
  std::string tail;
  ASSERT_TRUE(fs.ReadFile(seg, &tail).ok());
  ASSERT_TRUE(fs.WriteFile(seg, tail.substr(0, tail.size() - 3)).ok());
  (void)fs.ReopenLogs();

  auto txns = ReplayAll(&fs);
  ASSERT_EQ(txns.size(), 4u);
  EXPECT_EQ(txns.back().tid, 4u);
  EXPECT_EQ(txns.back().events[0].row_image, "payload-4");
}

TEST(BinlogTest, SeqResumesAfterRecoveryOnSegmentedLayout) {
  PolarFs::Options opt;
  opt.log_segment_bytes = 64;  // force several segments
  PolarFs fs(opt);
  {
    BinlogWriter binlog(fs.log("binlog"));
    for (int i = 1; i <= 6; ++i) {
      (void)binlog.CommitTxn(i, i, 0,
                       {MakeEvent(Event::Op::kInsert, 1, i,
                                  "old-" + std::to_string(i))});
    }
  }
  ASSERT_GE(fs.log("binlog")->segment_count(), 2u);
  // Crash tears the newest segment; recovery trims to the last good commit.
  auto files = fs.ListFiles("log/binlog/seg_");
  std::sort(files.begin(), files.end());
  std::string data;
  ASSERT_TRUE(fs.ReadFile(files.back(), &data).ok());
  ASSERT_TRUE(
      fs.WriteFile(files.back(), data.substr(0, data.size() - 5)).ok());
  (void)fs.ReopenLogs();

  const size_t recovered =
      BinlogWriter::Replay(fs.log("binlog"),
                           [](Tid, Vid, const std::vector<Event>&) {});
  ASSERT_LT(recovered, 6u);
  ASSERT_GT(recovered, 0u);

  // A writer attached post-recovery resumes right after the recovered tail
  // instead of rescanning files or overwriting history (no O(files) seeding:
  // the LogStore's recovered LSN *is* the resume point).
  BinlogWriter resumed(fs.log("binlog"));
  EXPECT_EQ(resumed.last_seq(), recovered);
  (void)resumed.CommitTxn(100, 100, 0,
                    {MakeEvent(Event::Op::kInsert, 1, 100, "new-100")});

  auto txns = ReplayAll(&fs);
  ASSERT_EQ(txns.size(), recovered + 1);
  EXPECT_EQ(txns[0].events[0].row_image, "old-1");  // history intact
  EXPECT_EQ(txns.back().tid, 100u);
  EXPECT_EQ(txns.back().events[0].row_image, "new-100");
}

TEST(BinlogTest, DecodeRejectsShortBuffers) {
  Tid tid;
  Vid vid;
  uint64_t ts;
  std::vector<Event> events;
  EXPECT_FALSE(BinlogWriter::DecodeTxn("", &tid, &vid, &ts, &events));
  EXPECT_FALSE(BinlogWriter::DecodeTxn("tiny", &tid, &vid, &ts, &events));
  EXPECT_FALSE(BinlogWriter::DecodeTxn(std::string(35, '\0'), &tid, &vid,
                                       &ts, &events));
}

TEST(BinlogTest, DecodeRejectsFlippedPayloadByte) {
  PolarFs fs;
  BinlogWriter binlog(fs.log("binlog"));
  (void)binlog.CommitTxn(1, 1, 0, {MakeEvent(Event::Op::kInsert, 1, 1, "payload")});
  std::vector<std::string> raw;
  fs.log("binlog")->Read(0, 1, &raw);
  ASSERT_EQ(raw.size(), 1u);
  Tid tid;
  Vid vid;
  uint64_t ts;
  std::vector<Event> events;
  ASSERT_TRUE(BinlogWriter::DecodeTxn(raw[0], &tid, &vid, &ts, &events));
  raw[0][30] ^= 0x5a;  // in-record corruption below the frame layer
  EXPECT_FALSE(BinlogWriter::DecodeTxn(raw[0], &tid, &vid, &ts, &events));
}

}  // namespace
}  // namespace imci
