#include <gtest/gtest.h>

#include <vector>

#include "polarfs/polarfs.h"
#include "rowstore/binlog.h"

namespace imci {
namespace {

using Event = BinlogWriter::Event;

Event MakeEvent(Event::Op op, TableId table, int64_t pk,
                std::string image = "") {
  Event e;
  e.op = op;
  e.table_id = table;
  e.pk = pk;
  e.row_image = std::move(image);
  return e;
}

struct ReplayedTxn {
  Tid tid;
  std::vector<Event> events;
};

std::vector<ReplayedTxn> ReplayAll(PolarFs* fs) {
  std::vector<ReplayedTxn> out;
  BinlogWriter::Replay(fs, [&](Tid tid, const std::vector<Event>& events) {
    out.push_back({tid, events});
  });
  return out;
}

TEST(BinlogTest, EmptyLogReplaysNothing) {
  PolarFs fs;
  EXPECT_EQ(BinlogWriter::Replay(&fs, [](Tid, const std::vector<Event>&) {
              FAIL() << "nothing to replay";
            }),
            0u);
}

TEST(BinlogTest, RoundTripPreservesCommitOrderAndPayloads) {
  PolarFs fs;
  BinlogWriter binlog(&fs);
  binlog.CommitTxn(11, {MakeEvent(Event::Op::kInsert, 1, 100, "row-100"),
                        MakeEvent(Event::Op::kUpdate, 1, 100, "row-100v2")});
  binlog.CommitTxn(12, {MakeEvent(Event::Op::kDelete, 2, 7)});
  binlog.CommitTxn(13, {});  // empty transaction is still a commit record
  EXPECT_EQ(binlog.txns_written(), 3u);

  auto txns = ReplayAll(&fs);
  ASSERT_EQ(txns.size(), 3u);
  EXPECT_EQ(txns[0].tid, 11u);
  ASSERT_EQ(txns[0].events.size(), 2u);
  EXPECT_EQ(txns[0].events[0].op, Event::Op::kInsert);
  EXPECT_EQ(txns[0].events[0].table_id, 1u);
  EXPECT_EQ(txns[0].events[0].pk, 100);
  EXPECT_EQ(txns[0].events[0].row_image, "row-100");
  EXPECT_EQ(txns[0].events[1].op, Event::Op::kUpdate);
  EXPECT_EQ(txns[0].events[1].row_image, "row-100v2");
  EXPECT_EQ(txns[1].tid, 12u);
  ASSERT_EQ(txns[1].events.size(), 1u);
  EXPECT_EQ(txns[1].events[0].op, Event::Op::kDelete);
  EXPECT_EQ(txns[1].events[0].pk, 7);
  EXPECT_TRUE(txns[1].events[0].row_image.empty());
  EXPECT_EQ(txns[2].tid, 13u);
  EXPECT_TRUE(txns[2].events.empty());
}

TEST(BinlogTest, EveryCommitPaysItsOwnFsync) {
  PolarFs fs;
  BinlogWriter binlog(&fs);
  const uint64_t before = fs.fsync_count();
  binlog.CommitTxn(1, {MakeEvent(Event::Op::kInsert, 1, 1, "x")});
  binlog.CommitTxn(2, {MakeEvent(Event::Op::kInsert, 1, 2, "y")});
  EXPECT_EQ(fs.fsync_count(), before + 2);
}

TEST(BinlogTest, TruncatedTailStopsReplayAtLastGoodRecord) {
  PolarFs fs;
  BinlogWriter binlog(&fs);
  for (int i = 1; i <= 5; ++i) {
    binlog.CommitTxn(i, {MakeEvent(Event::Op::kInsert, 1, i,
                                   "payload-" + std::to_string(i))});
  }
  // Simulated crash mid-write: the tail record loses its last bytes.
  std::string tail;
  ASSERT_TRUE(fs.ReadFile("binlog/5", &tail).ok());
  ASSERT_TRUE(fs.WriteFile("binlog/5", tail.substr(0, tail.size() - 3)).ok());

  auto txns = ReplayAll(&fs);
  ASSERT_EQ(txns.size(), 4u);
  EXPECT_EQ(txns.back().tid, 4u);
  EXPECT_EQ(txns.back().events[0].row_image, "payload-4");
}

TEST(BinlogTest, CorruptRecordStopsReplayWithoutDeliveringIt) {
  PolarFs fs;
  BinlogWriter binlog(&fs);
  for (int i = 1; i <= 3; ++i) {
    binlog.CommitTxn(i, {MakeEvent(Event::Op::kInsert, 1, i, "p")});
  }
  // Flip one payload byte in the middle record: its checksum no longer
  // matches, and replay must not deliver it or anything after it.
  std::string data;
  ASSERT_TRUE(fs.ReadFile("binlog/2", &data).ok());
  data[14] ^= 0x5a;
  ASSERT_TRUE(fs.WriteFile("binlog/2", std::move(data)).ok());

  auto txns = ReplayAll(&fs);
  ASSERT_EQ(txns.size(), 1u);
  EXPECT_EQ(txns[0].tid, 1u);
}

TEST(BinlogTest, WriterAttachedAfterRecoveryAppendsInsteadOfOverwriting) {
  PolarFs fs;
  {
    BinlogWriter binlog(&fs);
    binlog.CommitTxn(1, {MakeEvent(Event::Op::kInsert, 1, 1, "old-1")});
    binlog.CommitTxn(2, {MakeEvent(Event::Op::kInsert, 1, 2, "old-2")});
  }
  // "Restart": replay, then continue with a fresh writer on the same log.
  ASSERT_EQ(BinlogWriter::Replay(&fs, [](Tid, const std::vector<Event>&) {}),
            2u);
  BinlogWriter resumed(&fs);
  resumed.CommitTxn(3, {MakeEvent(Event::Op::kInsert, 1, 3, "new-3")});

  auto txns = ReplayAll(&fs);
  ASSERT_EQ(txns.size(), 3u);
  EXPECT_EQ(txns[0].events[0].row_image, "old-1");  // history intact
  EXPECT_EQ(txns[1].events[0].row_image, "old-2");
  EXPECT_EQ(txns[2].tid, 3u);
  EXPECT_EQ(txns[2].events[0].row_image, "new-3");
}

TEST(BinlogTest, DecodeRejectsShortBuffers) {
  Tid tid;
  std::vector<Event> events;
  EXPECT_FALSE(BinlogWriter::DecodeTxn("", &tid, &events));
  EXPECT_FALSE(BinlogWriter::DecodeTxn("tiny", &tid, &events));
  EXPECT_FALSE(
      BinlogWriter::DecodeTxn(std::string(19, '\0'), &tid, &events));
}

}  // namespace
}  // namespace imci
