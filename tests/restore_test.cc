// Point-in-time recovery tests: Cluster::RestoreToLsn over the archive tier.
//
// The live cluster recycles redo segments after checkpoints, destroying the
// only history a plain crash-recovery replay could use. With the archive
// tier sealing every segment before truncation, RestoreToLsn can target an
// LSN far *below* the recycle watermark and still reproduce exactly the
// durable prefix at the cut — the property these tests pin against a
// transaction-by-transaction model of the workload. The flip side is
// integrity: a torn or truncated archive must surface as Corruption, never
// as a silently shorter history; and without the archive tier the operation
// is refused outright instead of producing a gapped replay.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "archive/archive.h"
#include "common/fault.h"
#include "log/log_store.h"
#include "tests/test_util.h"

namespace imci {
namespace {

std::shared_ptr<const Schema> KvSchema() {
  std::vector<ColumnDef> cols;
  cols.push_back({"id", DataType::kInt64, false, true});
  cols.push_back({"v", DataType::kInt64, false, true});
  cols.push_back({"payload", DataType::kString, true, true});
  return std::make_shared<Schema>(1, "kv", cols, 0);
}

/// One committed single-op transaction: put (pk -> v, payload) at commit_lsn.
struct CommitMark {
  Lsn lsn = 0;
  Vid vid = 0;
  int64_t pk = 0;
  int64_t v = 0;
  std::string payload;
};

/// Expected table contents for the durable prefix ending at `cut`.
std::vector<Row> ModelAt(const std::vector<CommitMark>& commits, Lsn cut) {
  std::map<int64_t, std::pair<int64_t, std::string>> model;
  for (int64_t pk = 0; pk < 10; ++pk) model[pk] = {0, "base"};
  for (const CommitMark& c : commits) {
    if (c.lsn > cut) continue;
    model[c.pk] = {c.v, c.payload};
  }
  std::vector<Row> rows;
  for (const auto& [pk, vp] : model) {
    rows.push_back({pk, vp.first, vp.second});
  }
  return rows;
}

/// Both engines of a restored node, plus the replica row count, must equal
/// the model at the cut.
void CheckRestored(Cluster::RestoredCluster* r, const std::vector<Row>& want) {
  std::vector<Row> row_scan;
  ASSERT_TRUE(r->node->ExecuteRow(LScan(1, {0, 1, 2}), &row_scan).ok());
  EXPECT_EQ(testing_util::Canonicalize(row_scan),
            testing_util::Canonicalize(want));
  std::vector<Row> col_scan;
  ASSERT_TRUE(r->node->ExecuteColumn(LScan(1, {0, 1, 2}), &col_scan).ok());
  EXPECT_EQ(testing_util::Canonicalize(col_scan),
            testing_util::Canonicalize(want));
  RowTable* replica = r->node->engine()->GetTable(1);
  ASSERT_NE(replica, nullptr);
  EXPECT_EQ(replica->row_count(), want.size());
}

class RestoreTest : public ::testing::Test {
 protected:
  /// Anchor-retention cap the fixture's cluster runs with (0 = unbounded);
  /// the GC suite below overrides it.
  virtual size_t Retention() const { return 0; }

  void SetUp() override {
    ClusterOptions opts;
    opts.initial_ro_nodes = 1;
    opts.ro.imci.row_group_size = 256;
    opts.fs.log_segment_bytes = 512;  // small segments: recycling bites early
    opts.fs.snapshot_retention = Retention();
    cluster_ = std::make_unique<Cluster>(opts);
    ASSERT_TRUE(cluster_->CreateTable(KvSchema()).ok());
    std::vector<Row> rows;
    for (int64_t pk = 0; pk < 10; ++pk) {
      rows.push_back({pk, int64_t(0), std::string("base")});
    }
    ASSERT_TRUE(cluster_->BulkLoad(1, std::move(rows)).ok());
    ASSERT_TRUE(cluster_->Open().ok());
    txns_ = cluster_->rw()->txn_manager();
  }

  void Put(int64_t pk, int64_t v, const std::string& payload) {
    Transaction txn;
    txns_->Begin(&txn);
    Status s = pk < 10 ? txns_->Update(&txn, 1, pk, {pk, v, payload})
                       : txns_->Insert(&txn, 1, {pk, v, payload});
    ASSERT_TRUE(s.ok());
    ASSERT_TRUE(txns_->Commit(&txn).ok());
    commits_.push_back({txn.commit_lsn(), txn.commit_vid(), pk, v, payload});
  }

  /// Sequential single-op transactions: a mix of base-row updates and fresh
  /// inserts. Sequential means commit-LSN order == vector order, so every
  /// LSN cut maps onto a clean prefix of `commits_`.
  void Churn(int from, int n) {
    for (int i = from; i < from + n; ++i) {
      const int64_t pk = (i % 4 == 0) ? (i % 10) : 1000 + i;
      Put(pk, i, "p" + std::to_string(i));
    }
  }

  /// Quiesced leader checkpoint + segment recycling; returns the recycle
  /// watermark (history at or below it now lives only in the archive).
  Lsn CheckpointAndRecycle(uint64_t ckpt_id) {
    RoNode* leader = cluster_->leader();
    leader->StopReplication();
    EXPECT_TRUE(leader->CatchUpNow().ok());
    EXPECT_TRUE(leader->pipeline()->TakeCheckpoint(ckpt_id).ok());
    leader->StartReplication();
    Lsn recycled = 0;
    EXPECT_TRUE(cluster_->RecycleRedoLog(&recycled).ok());
    return recycled;
  }

  std::unique_ptr<Cluster> cluster_;
  TransactionManager* txns_ = nullptr;
  std::vector<CommitMark> commits_;
};

TEST_F(RestoreTest, RestoreBelowRecycleWatermarkEqualsDurablePrefix) {
  Churn(0, 80);
  const Lsn recycled = CheckpointAndRecycle(1);
  ASSERT_GT(recycled, 0u);
  EXPECT_EQ(cluster_->fs()->log("redo")->truncated_lsn(), recycled);
  Churn(80, 80);

  // The target: the last commit at or below the recycle watermark — history
  // the live log no longer holds anywhere.
  size_t k = commits_.size();
  while (k > 0 && commits_[k - 1].lsn > recycled) --k;
  ASSERT_GT(k, 1u);
  const CommitMark& mark = commits_[k - 1];

  Cluster::RestoredCluster r;
  ASSERT_TRUE(cluster_->RestoreToLsn(mark.lsn, &r).ok());
  EXPECT_EQ(r.lsn, mark.lsn);
  EXPECT_EQ(r.applied_vid, mark.vid);
  EXPECT_EQ(r.undone, 0u);  // the cut is a commit boundary
  CheckRestored(&r, ModelAt(commits_, mark.lsn));

  // Durable-prefix semantics mid-transaction: cut one LSN below the same
  // commit record. The transaction's DMLs replay but its decision does not,
  // so the restore rolls it back instead of surfacing a half-applied state.
  Cluster::RestoredCluster mid;
  ASSERT_TRUE(cluster_->RestoreToLsn(mark.lsn - 1, &mid).ok());
  EXPECT_EQ(mid.lsn, mark.lsn - 1);
  EXPECT_EQ(mid.applied_vid, commits_[k - 2].vid);
  EXPECT_GE(mid.undone, 1u);
  CheckRestored(&mid, ModelAt(commits_, mark.lsn - 1));

  // And to the live tail: the checkpoint anchor plus the archived prefix
  // spliced with the live suffix.
  const CommitMark& tail = commits_.back();
  Cluster::RestoredCluster full;
  ASSERT_TRUE(cluster_->RestoreToLsn(tail.lsn, &full).ok());
  EXPECT_EQ(full.lsn, tail.lsn);
  EXPECT_EQ(full.anchor_ckpt_id, 1u);
  EXPECT_EQ(full.applied_vid, tail.vid);
  CheckRestored(&full, ModelAt(commits_, tail.lsn));

  // All of which left the live cluster untouched.
  RoNode* live = cluster_->ro(0);
  ASSERT_TRUE(live->CatchUpNow().ok());
  std::vector<Row> live_rows;
  ASSERT_TRUE(live->ExecuteColumn(LScan(1, {0, 1, 2}), &live_rows).ok());
  EXPECT_EQ(testing_util::Canonicalize(live_rows),
            testing_util::Canonicalize(ModelAt(commits_, tail.lsn)));
}

TEST_F(RestoreTest, TornArchiveSurfacesAsCorruptionNotShorterHistory) {
  Churn(0, 60);
  const Lsn recycled = CheckpointAndRecycle(1);
  ASSERT_GT(recycled, 0u);

  ArchiveStore* arc = cluster_->fs()->archive();
  ASSERT_NE(arc, nullptr);
  std::vector<ArchivedSegment> segs;
  ASSERT_TRUE(arc->ListSegments("redo", &segs).ok());
  ASSERT_FALSE(segs.empty());
  const ArchivedSegment victim = segs.back();
  // A restore into the victim segment anchors at the base image (the only
  // anchor below it), so replay must read the victim from the archive.
  SnapshotStore::Anchor anchor;
  ASSERT_TRUE(arc->snapshots()->FindAnchor(victim.first, &anchor).ok());
  ASSERT_EQ(anchor.ckpt_id, 0u);
  ASSERT_LT(anchor.start_lsn, victim.first);

  const std::string seg_file =
      ArchiveStore::SegmentFileName("redo", victim.first);
  std::string intact;
  ASSERT_TRUE(cluster_->fs()->ReadFile(seg_file, &intact).ok());

  // A truncated segment file is detected, not silently replayed short.
  ASSERT_TRUE(cluster_->fs()
                  ->WriteFile(seg_file, intact.substr(0, intact.size() / 2))
                  .ok());
  Cluster::RestoredCluster torn;
  EXPECT_FALSE(cluster_->RestoreToLsn(victim.first, &torn).ok());

  // So is a single flipped byte at the right length.
  std::string flipped = intact;
  flipped[flipped.size() / 2] = static_cast<char>(flipped[flipped.size() / 2] ^ 0x40);
  ASSERT_TRUE(cluster_->fs()->WriteFile(seg_file, std::move(flipped)).ok());
  Cluster::RestoredCluster corrupt;
  EXPECT_FALSE(cluster_->RestoreToLsn(victim.first, &corrupt).ok());

  // Sanity: with the segment healed the same restore succeeds...
  ASSERT_TRUE(cluster_->fs()->WriteFile(seg_file, std::string(intact)).ok());
  Cluster::RestoredCluster healed;
  ASSERT_TRUE(cluster_->RestoreToLsn(victim.first, &healed).ok());

  // ...and a torn manifest then fails it again: the segment list itself is
  // untrusted until its trailer checksum verifies.
  const std::string manifest = ArchiveStore::ManifestFileName("redo");
  std::string mdata;
  ASSERT_TRUE(cluster_->fs()->ReadFile(manifest, &mdata).ok());
  ASSERT_TRUE(cluster_->fs()
                  ->WriteFile(manifest, mdata.substr(0, mdata.size() - 7))
                  .ok());
  Cluster::RestoredCluster gone;
  EXPECT_FALSE(cluster_->RestoreToLsn(victim.first, &gone).ok());
}

TEST_F(RestoreTest, FaultInjectedTornSealSurfacesAsCorruptionAtRestore) {
  Churn(0, 60);
  {
    // Tear the first write of the snapshot seal (the PAGES blob) — the
    // write *reports success*, exactly like a crash mid-write that the
    // device acknowledged early. Scoped to the seal path so the checkpoint
    // files written just before are untouched.
    fault::ScopedFault tear(
        "polarfs.write_file",
        fault::Policy{.kind = fault::Kind::kTorn, .hit_at = 1,
                      .keep_fraction = 0.5, .scope = "snapshot.seal"});
    const Lsn recycled = CheckpointAndRecycle(1);
    ASSERT_GT(recycled, 0u);
    ASSERT_GE(fault::Registry::Instance().fires("polarfs.write_file"), 1u);
  }
  Churn(60, 20);

  // Any restore anchored at the torn checkpoint must refuse with Corruption
  // — never a silently shorter history assembled from the truncated blob.
  const CommitMark& tail = commits_.back();
  Cluster::RestoredCluster torn;
  Status s = cluster_->RestoreToLsn(tail.lsn, &torn);
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();

  // The damage is contained to that anchor: a restore served by the intact
  // base anchor (below checkpoint 1's start LSN) still works and is exact.
  const CommitMark& early = commits_[5];
  Cluster::RestoredCluster ok;
  ASSERT_TRUE(cluster_->RestoreToLsn(early.lsn, &ok).ok());
  EXPECT_EQ(ok.anchor_ckpt_id, 0u);
  CheckRestored(&ok, ModelAt(commits_, early.lsn));
}

class RetentionRestoreTest : public RestoreTest {
 protected:
  size_t Retention() const override { return 2; }
};

// The retention satellite: capping the anchor count drops the oldest frozen
// snapshots at Register time, which raises the archive GC floor and makes
// the archived redo prefix below it reclaimable — while every restore the
// retained anchors can serve keeps working, and restores below the floor
// fail cleanly instead of replaying a gapped history.
TEST_F(RetentionRestoreTest, RetentionDropsAnchorsAndMakesLogPrefixGcEligible) {
  Churn(0, 40);
  CheckpointAndRecycle(1);
  Churn(40, 40);
  CheckpointAndRecycle(2);
  Churn(80, 40);
  CheckpointAndRecycle(3);

  ArchiveStore* arc = cluster_->fs()->archive();
  ASSERT_NE(arc, nullptr);
  SnapshotStore* snaps = arc->snapshots();
  ASSERT_EQ(snaps->retention(), 2u);

  // Base anchor and checkpoint 1 were evicted; 2 and 3 remain, and their
  // frozen blobs are the only ones left on the filesystem.
  std::vector<SnapshotStore::Anchor> anchors;
  ASSERT_TRUE(snaps->Anchors(&anchors).ok());
  ASSERT_EQ(anchors.size(), 2u);
  EXPECT_EQ(anchors.front().ckpt_id + anchors.back().ckpt_id, 5u);
  const Lsn floor = snaps->GcFloorLsn();
  EXPECT_GT(floor, 0u);
  for (const auto& a : anchors) EXPECT_GE(a.start_lsn, floor);

  // Archived segments wholly below the floor are GC-eligible; dropping them
  // removes the files and the manifest entries.
  std::vector<ArchivedSegment> eligible;
  ASSERT_TRUE(arc->GcEligibleSegments("redo", &eligible).ok());
  ASSERT_FALSE(eligible.empty());
  for (const auto& seg : eligible) EXPECT_LE(seg.last, floor);
  size_t dropped = 0;
  ASSERT_TRUE(arc->DropGcEligibleSegments("redo", &dropped).ok());
  EXPECT_EQ(dropped, eligible.size());
  for (const auto& seg : eligible) {
    std::string data;
    EXPECT_FALSE(cluster_->fs()
                     ->ReadFile(ArchiveStore::SegmentFileName("redo", seg.first),
                                &data)
                     .ok());
  }
  std::vector<ArchivedSegment> again;
  ASSERT_TRUE(arc->GcEligibleSegments("redo", &again).ok());
  EXPECT_TRUE(again.empty());

  // Every restore the retained anchors serve still works end-to-end: the
  // live tail, and the first commit above the floor (worst case — maximum
  // archived replay from the oldest retained anchor).
  const CommitMark& tail = commits_.back();
  Cluster::RestoredCluster full;
  ASSERT_TRUE(cluster_->RestoreToLsn(tail.lsn, &full).ok());
  CheckRestored(&full, ModelAt(commits_, tail.lsn));
  size_t k = 0;
  while (k < commits_.size() && commits_[k].lsn <= floor) ++k;
  ASSERT_LT(k, commits_.size());
  Cluster::RestoredCluster oldest;
  ASSERT_TRUE(cluster_->RestoreToLsn(commits_[k].lsn, &oldest).ok());
  CheckRestored(&oldest, ModelAt(commits_, commits_[k].lsn));

  // History below the floor is genuinely gone: no anchor covers it, so the
  // restore is refused rather than anchored too high.
  ASSERT_LT(commits_.front().lsn, floor);
  Cluster::RestoredCluster below;
  EXPECT_FALSE(cluster_->RestoreToLsn(commits_.front().lsn, &below).ok());
}

TEST(RestoreDisabledTest, RefusedWithoutArchiveTier) {
  ClusterOptions opts;
  opts.initial_ro_nodes = 1;
  opts.ro.imci.row_group_size = 256;
  opts.fs.enable_archive = false;
  Cluster cluster(opts);
  ASSERT_TRUE(cluster.CreateTable(KvSchema()).ok());
  std::vector<Row> rows;
  for (int64_t pk = 0; pk < 10; ++pk) {
    rows.push_back({pk, int64_t(0), std::string("base")});
  }
  ASSERT_TRUE(cluster.BulkLoad(1, std::move(rows)).ok());
  ASSERT_TRUE(cluster.Open().ok());
  auto* txns = cluster.rw()->txn_manager();
  Transaction txn;
  txns->Begin(&txn);
  ASSERT_TRUE(txns->Insert(&txn, 1, {int64_t(100), int64_t(1),
                                     std::string("x")}).ok());
  ASSERT_TRUE(txns->Commit(&txn).ok());
  Cluster::RestoredCluster r;
  EXPECT_FALSE(cluster.RestoreToLsn(txn.commit_lsn(), &r).ok());
}

}  // namespace
}  // namespace imci
