#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "common/clock.h"
#include "common/coding.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/row.h"
#include "common/status.h"
#include "common/thread_pool.h"

namespace imci {
namespace {

TEST(StatusTest, CodesAndMessages) {
  EXPECT_TRUE(Status::OK().ok());
  Status s = Status::NotFound("key 42");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.ToString(), "NotFound: key 42");
  EXPECT_EQ(Status::OK().ToString(), "OK");
  EXPECT_TRUE(Status::Busy().IsBusy());
  EXPECT_TRUE(Status::Aborted().IsAborted());
}

TEST(DateTest, RoundTripAndYear) {
  EXPECT_EQ(MakeDate(1970, 1, 1), 0);
  EXPECT_EQ(DateToString(MakeDate(1998, 9, 2)), "1998-09-02");
  EXPECT_EQ(DateYear(MakeDate(1992, 12, 31)), 1992);
  EXPECT_EQ(DateYear(MakeDate(1993, 1, 1)), 1993);
  // Leap-year handling.
  EXPECT_EQ(MakeDate(1996, 3, 1) - MakeDate(1996, 2, 28), 2);
  EXPECT_EQ(MakeDate(1995, 3, 1) - MakeDate(1995, 2, 28), 1);
}

TEST(ValueTest, CompareOrdersNullsFirst) {
  EXPECT_LT(CompareValues(Value{}, Value{int64_t(1)}), 0);
  EXPECT_EQ(CompareValues(Value{}, Value{}), 0);
  EXPECT_GT(CompareValues(Value{int64_t(2)}, Value{int64_t(1)}), 0);
  EXPECT_LT(CompareValues(Value{std::string("a")}, Value{std::string("b")}),
            0);
  EXPECT_EQ(CompareValues(Value{1.5}, Value{1.5}), 0);
  // Mixed numeric: int widens to double.
  EXPECT_LT(CompareValues(Value{int64_t(1)}, Value{1.5}), 0);
}

class RowCodecTest : public ::testing::Test {
 protected:
  RowCodecTest()
      : schema_(1, "t",
                {{"id", DataType::kInt64, false, true},
                 {"d", DataType::kDouble, true, true},
                 {"s", DataType::kString, true, true},
                 {"dt", DataType::kDate, true, true}},
                0) {}
  Schema schema_;
};

TEST_F(RowCodecTest, RoundTrip) {
  Row row = {int64_t(42), 3.14, std::string("hello"), int64_t(10000)};
  std::string buf;
  RowCodec::Encode(schema_, row, &buf);
  Row decoded;
  ASSERT_TRUE(RowCodec::Decode(schema_, buf.data(), buf.size(), &decoded).ok());
  EXPECT_EQ(decoded, row);
}

TEST_F(RowCodecTest, NullsRoundTrip) {
  Row row = {int64_t(1), Value{}, Value{}, Value{}};
  std::string buf;
  RowCodec::Encode(schema_, row, &buf);
  Row decoded;
  ASSERT_TRUE(RowCodec::Decode(schema_, buf.data(), buf.size(), &decoded).ok());
  EXPECT_EQ(decoded, row);
}

TEST_F(RowCodecTest, DecodePkSkipsOtherColumns) {
  Row row = {int64_t(77), 1.0, std::string("abc"), Value{}};
  std::string buf;
  RowCodec::Encode(schema_, row, &buf);
  int64_t pk = 0;
  ASSERT_TRUE(RowCodec::DecodePk(schema_, buf.data(), buf.size(), &pk).ok());
  EXPECT_EQ(pk, 77);
}

TEST_F(RowCodecTest, TruncatedBufferIsCorruption) {
  Row row = {int64_t(1), 2.0, std::string("xyz"), Value{}};
  std::string buf;
  RowCodec::Encode(schema_, row, &buf);
  Row decoded;
  for (size_t cut : {size_t(0), buf.size() / 2, buf.size() - 1}) {
    Status s = RowCodec::Decode(schema_, buf.data(), cut, &decoded);
    EXPECT_FALSE(s.ok()) << "cut=" << cut;
  }
}

class RowDiffParam : public ::testing::TestWithParam<int> {};

TEST_P(RowDiffParam, ComputeApplyRoundTrip) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 200; ++iter) {
    std::string before = rng.RandomString(0, 60);
    std::string after = before;
    const int kind = rng.Next() % 4;
    if (kind == 0 && !after.empty()) {
      after[rng.Next() % after.size()] = 'Z';
    } else if (kind == 1) {
      after += rng.RandomString(1, 20);
    } else if (kind == 2 && after.size() > 2) {
      after.resize(after.size() / 2);
    } else {
      after = rng.RandomString(0, 60);
    }
    RowDiff diff = RowDiff::Compute(before, after);
    std::string applied;
    ASSERT_TRUE(diff.Apply(before, &applied).ok());
    EXPECT_EQ(applied, after);
    std::string buf;
    diff.Serialize(&buf);
    RowDiff diff2;
    ASSERT_TRUE(RowDiff::Deserialize(buf.data(), buf.size(), &diff2).ok());
    ASSERT_TRUE(diff2.Apply(before, &applied).ok());
    EXPECT_EQ(applied, after);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RowDiffParam, ::testing::Values(1, 2, 3, 4));

TEST(RowDiffTest, DiffIsSmallerThanFullImageForPointEdits) {
  std::string before(200, 'a');
  std::string after = before;
  after[100] = 'b';
  RowDiff diff = RowDiff::Compute(before, after);
  EXPECT_LT(diff.ByteSize(), before.size() / 4);
}

TEST(HistogramTest, PercentilesAreOrdered) {
  LatencyHistogram h;
  for (uint64_t v = 1; v <= 10000; ++v) h.Record(v);
  EXPECT_EQ(h.Count(), 10000u);
  uint64_t p50 = h.Percentile(0.5);
  uint64_t p99 = h.Percentile(0.99);
  uint64_t p999 = h.Percentile(0.999);
  EXPECT_LE(p50, p99);
  EXPECT_LE(p99, p999);
  EXPECT_NEAR(static_cast<double>(p50), 5000, 700);
  EXPECT_EQ(h.Max(), 10000u);
  EXPECT_EQ(h.Min(), 1u);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
}

TEST(RngTest, DeterministicAndUniformish) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
  Rng r(9);
  int64_t low_half = 0;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = r.Uniform(10, 20);
    EXPECT_GE(v, 10);
    EXPECT_LE(v, 20);
    if (v <= 15) low_half++;
  }
  EXPECT_GT(low_half, 350);
  EXPECT_LT(low_half, 750);
}

TEST(ZipfTest, SkewsTowardSmallKeys) {
  Zipf z(100000, 0.99, 3);
  uint64_t small = 0;
  for (int i = 0; i < 10000; ++i) {
    if (z.Next() < 1000) small++;
  }
  // With theta=0.99 far more than 1% of draws land in the first 1%.
  EXPECT_GT(small, 2000u);
}

TEST(ThreadPoolTest, ParallelForRunsAllIndices) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(64);
  ParallelFor(&pool, 64, [&](int i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, TaskGroupWaitsForCompletion) {
  ThreadPool pool(4);
  TaskGroup group;
  std::atomic<int> done{0};
  group.Add(100);
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] {
      done.fetch_add(1);
      group.Done();
    });
  }
  group.Wait();
  EXPECT_EQ(done.load(), 100);
}

TEST(CodingTest, FixedIntsRoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0xdeadbeef);
  PutFixed64(&buf, 0x0123456789abcdefull);
  EXPECT_EQ(GetFixed32(buf.data()), 0xdeadbeefu);
  EXPECT_EQ(GetFixed64(buf.data() + 4), 0x0123456789abcdefull);
}

TEST(CodingTest, Hash64Spreads) {
  std::set<uint64_t> buckets;
  for (uint64_t i = 0; i < 1000; ++i) buckets.insert(Hash64(i) % 64);
  EXPECT_EQ(buckets.size(), 64u);
}

}  // namespace
}  // namespace imci
