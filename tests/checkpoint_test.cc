#include <gtest/gtest.h>

#include "imci/checkpoint.h"

namespace imci {
namespace {

std::shared_ptr<const Schema> TestSchema(TableId id = 1) {
  std::vector<ColumnDef> cols;
  cols.push_back({"id", DataType::kInt64, false, true});
  cols.push_back({"v", DataType::kInt64, false, true});
  cols.push_back({"s", DataType::kString, true, true});
  return std::make_shared<Schema>(id, "t" + std::to_string(id), cols, 0);
}

ColumnIndexOptions SmallGroups() {
  ColumnIndexOptions o;
  o.row_group_size = 32;
  return o;
}

TEST(CheckpointTest, IndexRoundTripPreservesContentAndVisibility) {
  ColumnIndex src(TestSchema(), SmallGroups());
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(src.Insert({i, i * 3, std::string("s") + std::to_string(i)},
                           i % 5 + 1).ok());
  }
  ASSERT_TRUE(src.Delete(10, 7).ok());
  ASSERT_TRUE(src.Update({int64_t(20), int64_t(777), Value{}}, 8).ok());
  src.FreezeFullGroups();

  std::string blob;
  ASSERT_TRUE(ImciCheckpoint::WriteIndex(src, /*csn=*/100, &blob).ok());
  ColumnIndex dst(TestSchema(), SmallGroups());
  ASSERT_TRUE(ImciCheckpoint::LoadIndex(blob, &dst).ok());

  EXPECT_EQ(dst.next_rid(), src.next_rid());
  for (Vid view : {Vid(1), Vid(5), Vid(7), Vid(8), Vid(100)}) {
    EXPECT_EQ(dst.visible_rows(view), src.visible_rows(view)) << view;
  }
  Row row;
  ASSERT_TRUE(dst.LookupByPk(20, 100, &row).ok());
  EXPECT_EQ(AsInt(row[1]), 777);
  EXPECT_TRUE(dst.LookupByPk(10, 100, &row).IsNotFound());
  // Pack metas were rebuilt (pruning stays sound).
  const PackMeta& m = dst.group(0)->meta(dst.PackForColumn(0));
  EXPECT_TRUE(m.has_value);
  EXPECT_EQ(m.min_i, 0);
}

TEST(CheckpointTest, PreCommitResidueStaysInvisibleAcrossCheckpoint) {
  // Checkpoints are taken quiesced at CSN == applied state (§7); the VID
  // clamp's job is to keep *pre-committed large-transaction residue*
  // (invalid VIDs, §5.5) invisible in the persisted image.
  ColumnIndex src(TestSchema(), SmallGroups());
  ASSERT_TRUE(src.Insert({int64_t(1), int64_t(1), Value{}}, 5).ok());
  Rid rid = src.PreAllocate(3);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        src.PreWrite(rid + i, {int64_t(100 + i), int64_t(i), Value{}}).ok());
  }
  std::string blob;
  ASSERT_TRUE(ImciCheckpoint::WriteIndex(src, /*csn=*/5, &blob).ok());
  ColumnIndex dst(TestSchema(), SmallGroups());
  ASSERT_TRUE(ImciCheckpoint::LoadIndex(blob, &dst).ok());
  EXPECT_EQ(dst.visible_rows(5), 1u);
  EXPECT_EQ(dst.visible_rows(1000), 1u);  // residue never becomes visible
  Row row;
  ASSERT_TRUE(dst.LookupByPk(1, 5, &row).ok());
  EXPECT_TRUE(dst.LookupByPk(100, 1000, &row).IsNotFound());
  // The recovered node re-replays the large transaction into new slots;
  // next_rid was preserved so fresh RIDs never collide with residue.
  EXPECT_EQ(dst.next_rid(), src.next_rid());
}

TEST(CheckpointTest, SnapshotManifestAndLoadLatest) {
  PolarFs fs;
  Catalog catalog;
  auto s1 = TestSchema(1);
  auto s2 = TestSchema(2);
  catalog.Register(s1);
  catalog.Register(s2);
  ImciStore store(SmallGroups());
  ColumnIndex* i1 = store.CreateIndex(s1);
  ColumnIndex* i2 = store.CreateIndex(s2);
  for (int64_t i = 0; i < 40; ++i) {
    ASSERT_TRUE(i1->Insert({i, i, Value{}}, 1).ok());
    ASSERT_TRUE(i2->Insert({i, -i, Value{}}, 2).ok());
  }
  ASSERT_TRUE(
      ImciCheckpoint::WriteSnapshot(store, /*csn=*/2, /*start_lsn=*/17, &fs,
                                    /*ckpt_id=*/1).ok());
  // A newer checkpoint becomes CURRENT.
  ASSERT_TRUE(i1->Insert({int64_t(100), int64_t(100), Value{}}, 3).ok());
  ASSERT_TRUE(
      ImciCheckpoint::WriteSnapshot(store, /*csn=*/3, /*start_lsn=*/29, &fs,
                                    /*ckpt_id=*/2).ok());

  ImciStore loaded(SmallGroups());
  Vid csn = 0;
  Lsn start_lsn = 0;
  uint64_t ckpt_id = 0;
  ASSERT_TRUE(ImciCheckpoint::LoadLatest(&fs, catalog, &loaded, &csn,
                                         &start_lsn, &ckpt_id).ok());
  EXPECT_EQ(csn, 3u);
  EXPECT_EQ(start_lsn, 29u);
  EXPECT_EQ(ckpt_id, 2u);
  EXPECT_EQ(loaded.GetIndex(1)->visible_rows(3), 41u);
  EXPECT_EQ(loaded.GetIndex(2)->visible_rows(3), 40u);
}

TEST(CheckpointTest, LoadLatestWithoutCheckpointIsNotFound) {
  PolarFs fs;
  Catalog catalog;
  ImciStore store;
  Vid csn;
  Lsn lsn;
  EXPECT_TRUE(ImciCheckpoint::LoadLatest(&fs, catalog, &store, &csn, &lsn,
                                         nullptr).IsNotFound());
}

TEST(CheckpointTest, ReadLatestManifestProbesWithoutLoadingIndexData) {
  PolarFs fs;
  Vid csn = 0;
  Lsn start_lsn = 0;
  uint64_t id = 0;
  // No checkpoint yet: the recycling probe reports NotFound, not an error.
  EXPECT_TRUE(
      ImciCheckpoint::ReadLatestManifest(&fs, &csn, &start_lsn, &id)
          .IsNotFound());

  auto schema = TestSchema();
  ImciStore store(SmallGroups());
  ColumnIndex* idx = store.CreateIndex(schema);
  ASSERT_TRUE(idx->Insert({int64_t(1), int64_t(1), Value{}}, 1).ok());
  ASSERT_TRUE(
      ImciCheckpoint::WriteSnapshot(store, /*csn=*/7, /*start_lsn=*/42, &fs,
                                    /*ckpt_id=*/3).ok());
  const uint64_t reads_before = fs.page_reads();
  ASSERT_TRUE(
      ImciCheckpoint::ReadLatestManifest(&fs, &csn, &start_lsn, &id).ok());
  EXPECT_EQ(csn, 7u);
  EXPECT_EQ(start_lsn, 42u);
  EXPECT_EQ(id, 3u);
  EXPECT_EQ(fs.page_reads(), reads_before);  // header-only probe
}

}  // namespace
}  // namespace imci
